"""Per-workload cost profiles and framework calibration constants.

These are the only tuned numbers in the simulator.  Hardware rates live
in :mod:`repro.simulate.cluster`; everything here is a *per-byte software
cost* or a structural ratio, with the justification recorded inline.
The calibration test (``tests/simulate/test_calibration.py``) pins the
headline outputs to the paper's bands.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.units import MiB


@dataclass(frozen=True)
class WorkloadProfile:
    """Software costs of one benchmark, per framework-agnostic stage."""

    name: str
    #: map/O user+framework CPU seconds per input MB, per task (Hadoop)
    cpu_map_s_per_mb: float
    #: reduce/A CPU seconds per shuffled MB, per task
    cpu_reduce_s_per_mb: float
    #: intermediate bytes emitted per input byte (after combine)
    map_output_ratio: float
    #: final output bytes per intermediate byte
    reduce_output_ratio: float
    #: extra map-side CPU factor Hadoop pays for this workload: its
    #: per-record engine path (output collector, spill sort, Writable
    #: round-trips) costs more the smaller the records are.  TeraSort's
    #: 100-byte records are the calibration baseline (1.0); WordCount
    #: pushes ~16x more records per MB through the collector.
    hadoop_cpu_factor: float = 1.0
    #: Iteration mode: CPU multiplier when the input is already resident
    #: in process memory (1.0 = no saving).  PageRank must still walk the
    #: adjacency structure every round, so it saves only the parse cost;
    #: K-means keeps points as compact arrays and saves far more.
    resident_cpu_discount: float = 0.62


#: TeraSort: identity map/reduce; CPU cost is serialization + sort.
#: 0.080 s/MB (~12.5 MB/s/core) reproduces the measured Hadoop map-phase
#: read rate of ~39 MB/s/node with 4 map slots on Testbed A.
TERASORT = WorkloadProfile(
    name="terasort",
    cpu_map_s_per_mb=0.040,
    cpu_reduce_s_per_mb=0.025,
    map_output_ratio=1.0,
    reduce_output_ratio=1.0,
)

#: WordCount: heavier parsing per input byte but the combiner collapses
#: the shuffle to a few percent of the input ("smaller data movement").
WORDCOUNT = WorkloadProfile(
    name="wordcount",
    cpu_map_s_per_mb=0.110,
    cpu_reduce_s_per_mb=0.020,
    map_output_ratio=0.05,
    reduce_output_ratio=0.3,
    hadoop_cpu_factor=1.40,
)

#: PageRank round: the whole graph is read, contributions shuffled.
PAGERANK = WorkloadProfile(
    name="pagerank",
    cpu_map_s_per_mb=0.095,
    cpu_reduce_s_per_mb=0.045,
    map_output_ratio=0.6,
    reduce_output_ratio=1.0,
    hadoop_cpu_factor=1.10,
    resident_cpu_discount=0.85,
)

#: K-means round: distance computation dominates; tiny shuffle
#: (pre-aggregated cluster sums).
KMEANS = WorkloadProfile(
    name="kmeans",
    cpu_map_s_per_mb=0.150,
    cpu_reduce_s_per_mb=0.010,
    map_output_ratio=0.02,
    reduce_output_ratio=0.02,
    hadoop_cpu_factor=1.15,
    resident_cpu_discount=0.62,
)

PROFILES = {p.name: p for p in (TERASORT, WORDCOUNT, PAGERANK, KMEANS)}


@dataclass(frozen=True)
class FrameworkConstants:
    """Per-framework structural constants (§IV mechanisms)."""

    #: task launch overhead, seconds (JVM start vs reused DataMPI process)
    task_startup: float
    #: job submission/teardown overhead, seconds
    job_overhead: float
    #: per-HTTP-stream shuffle throughput cap, bytes/s (Jetty servlet on
    #: 1GigE; None = no per-stream cap beyond the NIC)
    shuffle_stream_cap: float | None
    #: fraction of map output that must be written to local disk
    map_output_to_disk: float
    #: fraction of served shuffle data that misses the OS page cache and
    #: re-reads disk on the map side
    shuffle_disk_miss: float
    #: reduce-side merge traffic written+read to disk per shuffled byte
    reduce_merge_disk: float
    #: CPU multiplier on the map/O side vs the profile costs
    cpu_factor_map: float
    #: CPU multiplier on the reduce/A side
    cpu_factor_reduce: float
    #: extra CPU per *emitted* MB (partition + sort + send path); DataMPI
    #: pays this inside the O phase because its communication thread runs
    #: concurrently with the computation (Fig 11a's higher early CPU)
    shuffle_cpu_s_per_mb: float = 0.0


#: Hadoop 1.2.1: JVM-per-task, two-phase proxy shuffle, disk-heavy.
HADOOP_CONSTANTS = FrameworkConstants(
    task_startup=1.2,
    job_overhead=8.0,
    shuffle_stream_cap=40e6,
    map_output_to_disk=1.0,
    shuffle_disk_miss=0.15,  # §V-D: OS cache holds most served map output
    reduce_merge_disk=0.35,
    cpu_factor_map=1.0,
    cpu_factor_reduce=1.0,
    shuffle_cpu_s_per_mb=0.0,  # sort/spill cost is inside the profile cpu
)

#: DataMPI: persistent processes, in-memory O-side push shuffle,
#: data-local A tasks.  The O side carries the communication thread's
#: partition/sort/send work *inside* the O phase (hence a >1 map factor —
#: Fig 11a shows DataMPI's early CPU above Hadoop's), while the A side is
#: leaner than a Hadoop reducer (data already local and merged).
DATAMPI_CONSTANTS = FrameworkConstants(
    task_startup=0.15,
    job_overhead=2.5,
    shuffle_stream_cap=None,
    map_output_to_disk=0.0,  # cached in memory by default (§IV-C)
    shuffle_disk_miss=0.0,
    reduce_merge_disk=0.0,
    cpu_factor_map=1.0,
    cpu_factor_reduce=0.95,
    shuffle_cpu_s_per_mb=0.022,
)

#: checkpoint-enabled DataMPI additionally writes each emitted byte once
#: (§IV-E); modelled in the DataMPI job parameters, not here.

#: granularity at which map CPU work and pipelined sends interleave
PIPELINE_CHUNK = 32 * MiB

#: HDFS block open cost paid by every map/O task regardless of framework
#: (NameNode lookup + pipeline setup); this is what makes very small
#: blocks lose throughput in Figure 8(a)
HDFS_OPEN_COST = 0.5

#: fixed cost of one shuffle HTTP GET (request parse, servlet dispatch);
#: many small map outputs -> many fetches -> Figure 8(a)'s small-block
#: penalty on the Hadoop side
SHUFFLE_FETCH_COST = 0.02
