"""A generator-based discrete-event simulation core (simpy-lite).

Processes are Python generators that ``yield`` events; the simulator
advances a virtual clock through a priority queue.  Everything is
deterministic: same processes + same seed ⇒ identical timelines.

>>> sim = Simulator()
>>> def proc():
...     yield sim.timeout(5.0)
...     return sim.now
>>> p = sim.process(proc())
>>> sim.run()
>>> p.value
5.0
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Generator, Iterable

from repro.common.errors import SimulationError


class Event:
    """A one-shot occurrence processes can wait on."""

    __slots__ = ("sim", "triggered", "value", "_waiters")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.triggered = False
        self.value: Any = None
        self._waiters: list[Process] = []

    def succeed(self, value: Any = None) -> "Event":
        if self.triggered:
            raise SimulationError("event triggered twice")
        self.triggered = True
        self.value = value
        for process in self._waiters:
            self.sim._schedule_step(process, value)
        self._waiters.clear()
        return self

    def _wait(self, process: "Process") -> None:
        if self.triggered:
            self.sim._schedule_step(process, self.value)
        else:
            self._waiters.append(process)


class AllOf(Event):
    """Fires when every child event has fired."""

    __slots__ = ("_remaining",)

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        events = list(events)
        self._remaining = len(events)
        if self._remaining == 0:
            self.succeed()
            return
        for event in events:
            self._watch(event)

    def _watch(self, event: Event) -> None:
        def waiter() -> Generator:
            yield event
            self._remaining -= 1
            if self._remaining == 0 and not self.triggered:
                self.succeed()

        self.sim.process(waiter())


class Process(Event):
    """A running generator; also an event that fires at completion."""

    __slots__ = ("generator",)

    def __init__(self, sim: "Simulator", generator: Generator) -> None:
        super().__init__(sim)
        self.generator = generator
        sim._schedule_step(self, None)

    def _step(self, sent: Any) -> None:
        try:
            yielded = self.generator.send(sent)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        if not isinstance(yielded, Event):
            raise SimulationError(
                f"process yielded {type(yielded).__name__}, expected an Event"
            )
        yielded._wait(self)


class Simulator:
    """The event loop and virtual clock."""

    def __init__(self) -> None:
        self.now = 0.0
        self._queue: list[tuple[float, int, Process, Any]] = []
        self._counter = itertools.count()
        self._steps = 0

    # -- event constructors ------------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Event:
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        event = Event(self)
        heapq.heappush(
            self._queue, (self.now + delay, next(self._counter), _Trigger(event, value), None)
        )
        return event

    def process(self, generator: Generator) -> Process:
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> Event:
        return AllOf(self, events)

    # -- scheduling internals -------------------------------------------------------
    def _schedule_step(self, process: "Process | _Trigger", value: Any) -> None:
        heapq.heappush(self._queue, (self.now, next(self._counter), process, value))

    # -- the loop ----------------------------------------------------------------------
    def run(self, until: float | None = None, max_steps: int = 20_000_000) -> None:
        """Drain the event queue (optionally stopping at virtual ``until``)."""
        while self._queue:
            at, _, process, value = heapq.heappop(self._queue)
            if until is not None and at > until:
                self.now = until
                heapq.heappush(self._queue, (at, next(self._counter), process, value))
                return
            if at < self.now:
                raise SimulationError("time went backwards")
            self.now = at
            if isinstance(process, _Trigger):
                if not process.event.triggered:
                    process.event.succeed(process.value)
            else:
                process._step(value)
            self._steps += 1
            if self._steps > max_steps:
                raise SimulationError(
                    f"simulation exceeded {max_steps} steps (runaway model?)"
                )


class _Trigger:
    """Internal queue entry that fires a timeout event."""

    __slots__ = ("event", "value")

    def __init__(self, event: Event, value: Any) -> None:
        self.event = event
        self.value = value

    def __lt__(self, other: Any) -> bool:  # tie-break stability in the heap
        return False
