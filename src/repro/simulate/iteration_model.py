"""Iteration-model simulation: PageRank and K-means rounds (Fig 10b).

Hadoop executes each round as a complete MapReduce job: submit the job,
launch task JVMs, read the entire dataset from HDFS, shuffle, and write
everything back for the next round.  DataMPI's Iteration mode keeps the
working processes alive and the partitioned state *resident in memory*
across rounds — so a round skips the input re-read, the output rewrite
and the per-round re-parsing (deserialization) of the data.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.simulate.cluster import ClusterSpec, SimCluster
from repro.simulate.datampi_model import DataMPISimParams, simulate_datampi_job
from repro.simulate.hadoop_model import HadoopSimParams, simulate_hadoop_job
from repro.simulate.profiles import WorkloadProfile



@dataclass
class IterationSimResult:
    framework: str
    workload: str
    round_times: list[float]

    @property
    def total(self) -> float:
        return sum(self.round_times)

    @property
    def mean_round(self) -> float:
        return self.total / len(self.round_times)


def simulate_iteration_hadoop(
    spec: ClusterSpec,
    profile: WorkloadProfile,
    data_bytes: float,
    rounds: int,
    num_reduces: int | None = None,
    block_size: float | None = None,
) -> IterationSimResult:
    """One full MapReduce job per round (the Mahout/self-developed shape)."""
    num_reduces = num_reduces or spec.num_slaves * spec.reduce_slots
    block_size = block_size or spec.default_block_size
    times = []
    for round_no in range(rounds):
        cluster = SimCluster(spec)  # a fresh job: page cache and JVMs reset
        report = simulate_hadoop_job(
            cluster,
            HadoopSimParams(
                profile,
                data_bytes,
                block_size,
                num_reduces=num_reduces,
                name=f"{profile.name}-r{round_no}",
            ),
            profile_resources=False,
        )
        times.append(report.duration)
    return IterationSimResult("Hadoop", profile.name, times)


def simulate_iteration_datampi(
    spec: ClusterSpec,
    profile: WorkloadProfile,
    data_bytes: float,
    rounds: int,
    num_a_tasks: int | None = None,
    block_size: float | None = None,
) -> IterationSimResult:
    """One persistent job; rounds > 0 run on resident state."""
    num_a_tasks = num_a_tasks or spec.num_slaves * spec.reduce_slots
    block_size = block_size or spec.default_block_size
    times = []
    for round_no in range(rounds):
        cluster = SimCluster(spec)
        params = DataMPISimParams(
            profile,
            data_bytes,
            block_size,
            num_a_tasks=num_a_tasks,
            name=f"{profile.name}-r{round_no}",
        )
        if round_no > 0:
            # state is already partitioned in process memory: no input
            # re-read, no re-parse, no output rewrite until the last round
            resident_profile = replace(
                profile,
                cpu_map_s_per_mb=profile.cpu_map_s_per_mb
                * profile.resident_cpu_discount,
                reduce_output_ratio=(
                    profile.reduce_output_ratio if round_no == rounds - 1 else 0.02
                ),
            )
            params = replace(params, profile=resident_profile, resident_input=True)
        report = simulate_datampi_job(cluster, params, profile_resources=False)
        times.append(report.duration)
    return IterationSimResult("DataMPI", profile.name, times)


def iteration_comparison(
    spec: ClusterSpec,
    profile: WorkloadProfile,
    data_bytes: float,
    rounds: int,
) -> dict[str, IterationSimResult]:
    return {
        "Hadoop": simulate_iteration_hadoop(spec, profile, data_bytes, rounds),
        "DataMPI": simulate_iteration_datampi(spec, profile, data_bytes, rounds),
    }
