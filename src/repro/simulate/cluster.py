"""Simulated cluster hardware: the paper's two testbeds.

Testbed A: 17 nodes (1 master + 16 slaves), dual octa-core 2.1 GHz
Opterons, 64 GB RAM, one 500 GB HDD, 1GigE.  Testbed B: 65 nodes, dual
quad-core 2.67 GHz Xeons, 12 GB RAM, one HDD, 1GigE (§V-A).

The single HDD per node is load-bearing: "the disk will easily become
the bottleneck" (§V-B).  :class:`SharedDisk` serves concurrent streams
round-robin in chunks with a seek penalty on every stream switch, which
is what makes high task concurrency hurt (Fig 8b) and map-output spills
steal input-read bandwidth (Fig 11b).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Generator

from repro.common.units import GiB, MiB
from repro.simulate.engine import Event, Simulator
from repro.simulate.resources import Cores, Device, MemoryGauge


@dataclass(frozen=True)
class NodeSpec:
    cores: int
    ram_bytes: float
    disk_rate: float          # sequential bytes/s (one HDD)
    disk_seek: float          # seconds lost per stream switch
    nic_rate: float           # payload bytes/s each direction


@dataclass(frozen=True)
class ClusterSpec:
    name: str
    num_slaves: int
    node: NodeSpec
    default_block_size: int
    map_slots: int
    reduce_slots: int

    def with_slaves(self, num_slaves: int) -> "ClusterSpec":
        return ClusterSpec(
            self.name, num_slaves, self.node, self.default_block_size,
            self.map_slots, self.reduce_slots,
        )

    def with_slots(self, map_slots: int, reduce_slots: int) -> "ClusterSpec":
        return ClusterSpec(
            self.name, self.num_slaves, self.node, self.default_block_size,
            map_slots, reduce_slots,
        )


#: 1GigE payload goodput (94% framing efficiency)
_GIGE_GOODPUT = 117e6
#: contemporary 7.2k HDD
_HDD_RATE = 110e6
_HDD_SEEK = 8e-3

TESTBED_A = ClusterSpec(
    name="Testbed A",
    num_slaves=16,
    node=NodeSpec(
        cores=16,
        ram_bytes=64 * GiB,
        disk_rate=_HDD_RATE,
        disk_seek=_HDD_SEEK,
        nic_rate=_GIGE_GOODPUT,
    ),
    default_block_size=256 * MiB,
    map_slots=4,
    reduce_slots=4,
)

TESTBED_B = ClusterSpec(
    name="Testbed B",
    num_slaves=64,
    node=NodeSpec(
        cores=8,
        ram_bytes=12 * GiB,
        # "single HDD (less than 80 GB free space)" (§V-A): old and nearly
        # full disks run in their slow inner-track zones
        disk_rate=60e6,
        disk_seek=_HDD_SEEK,
        nic_rate=_GIGE_GOODPUT,
    ),
    default_block_size=128 * MiB,
    map_slots=2,
    reduce_slots=2,
)


class SharedDisk:
    """One HDD served round-robin across streams, chunked, with seeks.

    Each ``transfer`` is a stream; the head moves between active streams
    every chunk, paying a seek each time it switches.  A single stream
    gets the full sequential rate; eight interleaved streams lose
    ``seek/chunk_time`` of it — the concurrency penalty of Fig 8(b).
    """

    CHUNK = 8 * MiB

    def __init__(self, sim: Simulator, spec: NodeSpec, name: str = "disk") -> None:
        self.sim = sim
        self.rate = spec.disk_rate
        self.seek = spec.disk_seek
        self.name = name
        self.bytes_read = 0.0
        self.bytes_written = 0.0
        self.busy_time = 0.0
        self._streams: deque[list] = deque()  # [remaining, done_event, kind]
        self._server_running = False
        self._last_stream: object = None

    def transfer(self, nbytes: float, kind: str = "read") -> Event:
        """Event firing when this stream's bytes are fully served."""
        done = self.sim.event()
        if nbytes <= 0:
            done.succeed()
            return done
        stream = [float(nbytes), done, kind]
        self._streams.append(stream)
        if not self._server_running:
            self._server_running = True
            self.sim.process(self._serve())
        return done

    def read(self, nbytes: float) -> Event:
        return self.transfer(nbytes, "read")

    def write(self, nbytes: float) -> Event:
        return self.transfer(nbytes, "write")

    def _serve(self) -> Generator:
        import math

        while self._streams:
            stream = self._streams.popleft()
            remaining, done, kind = stream
            chunk = min(self.CHUNK, remaining)
            cost = chunk / self.rate
            if self._last_stream is not stream and self._last_stream is not None:
                # seeks lengthen mildly with queue depth: more concurrent
                # streams are spread wider across the platter
                depth = 1 + len(self._streams)
                cost += self.seek * min(2.0, math.log2(1 + depth) / 1.8)
            self._last_stream = stream
            self.busy_time += cost
            if kind == "read":
                self.bytes_read += chunk
            else:
                self.bytes_written += chunk
            yield self.sim.timeout(cost)
            stream[0] = remaining - chunk
            if stream[0] > 0:
                self._streams.append(stream)  # round-robin
            else:
                done.succeed()
        self._server_running = False
        self._last_stream = None


class SimNode:
    """Simulated slave node."""

    def __init__(self, sim: Simulator, node_id: int, spec: NodeSpec) -> None:
        self.node_id = node_id
        self.spec = spec
        self.cpu = Cores(sim, spec.cores, f"cpu{node_id}")
        self.disk = SharedDisk(sim, spec, f"disk{node_id}")
        self.nic_out = Device(sim, spec.nic_rate, f"nic-out{node_id}")
        self.nic_in = Device(sim, spec.nic_rate, f"nic-in{node_id}")
        self.mem = MemoryGauge(spec.ram_bytes, f"mem{node_id}")


class SimCluster:
    """All slave nodes of one testbed under one simulator."""

    def __init__(self, spec: ClusterSpec, sim: Simulator | None = None) -> None:
        self.spec = spec
        self.sim = sim or Simulator()
        self.nodes = [SimNode(self.sim, i, spec.node) for i in range(spec.num_slaves)]

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    # -- cluster-wide cumulative counters (for the profiler) ----------------------
    def total_disk_read(self) -> float:
        return sum(n.disk.bytes_read for n in self.nodes)

    def total_disk_written(self) -> float:
        return sum(n.disk.bytes_written for n in self.nodes)

    def total_net_bytes(self) -> float:
        return sum(n.nic_out.bytes_transferred for n in self.nodes)

    def total_cpu_busy(self) -> int:
        return sum(n.cpu.busy for n in self.nodes)

    def total_cores(self) -> int:
        return sum(n.cpu.n for n in self.nodes)

    def total_mem_used(self) -> float:
        return sum(n.mem.used for n in self.nodes)
