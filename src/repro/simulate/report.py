"""Simulation reports: what a simulated job run produces."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.stats import TimeSeries


@dataclass
class SimJobReport:
    """Timing, progress and resource profile of one simulated job."""

    name: str
    framework: str
    duration: float = 0.0
    #: phase -> (start, end) in virtual seconds
    phases: dict[str, tuple[float, float]] = field(default_factory=dict)
    #: per-phase task-completion progress curves (fraction 0..1)
    progress: dict[str, TimeSeries] = field(default_factory=dict)
    #: cluster-average resource profiles over time
    cpu_util: TimeSeries = field(default_factory=lambda: TimeSeries("cpu %"))
    disk_read: TimeSeries = field(default_factory=lambda: TimeSeries("disk read B/s"))
    disk_write: TimeSeries = field(default_factory=lambda: TimeSeries("disk write B/s"))
    net: TimeSeries = field(default_factory=lambda: TimeSeries("net B/s"))
    mem: TimeSeries = field(default_factory=lambda: TimeSeries("mem B"))
    #: free-form extra numbers (checkpoint stats, spill bytes, ...)
    extra: dict[str, float] = field(default_factory=dict)

    def phase_duration(self, phase: str) -> float:
        start, end = self.phases[phase]
        return end - start

    def throughput(self, total_bytes: float) -> float:
        """Job-level bytes/s (the paper's TeraSort 'Throughput (MB/sec)')."""
        return total_bytes / self.duration if self.duration else 0.0

    def mean_disk_read_rate(self, phase: str) -> float:
        """Per-node average disk read rate during a phase (Fig 11b)."""
        start, end = self.phases[phase]
        return self.disk_read.mean(start, end)

    def mean_net_rate(self, phase: str | None = None) -> float:
        if phase is None:
            return self.net.mean(0, self.duration)
        start, end = self.phases[phase]
        return self.net.mean(start, end)

    def summary(self) -> str:
        phase_bits = ", ".join(
            f"{name}: {end - start:.0f}s" for name, (start, end) in self.phases.items()
        )
        return f"{self.framework} {self.name}: {self.duration:.0f}s ({phase_bits})"
