"""One function per evaluation figure (§V).

The benchmark harness and the shape tests both call these, so the code
that "regenerates Table/Figure N" lives in exactly one place.  Figures
1(a)/1(b) live in :mod:`repro.net` (they are primitive-level, not
cluster-level).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.common.units import GiB, MiB
from repro.simulate.cluster import TESTBED_A, TESTBED_B, ClusterSpec, SimCluster
from repro.simulate.datampi_model import DataMPISimParams, simulate_datampi_job
from repro.simulate.hadoop_model import HadoopSimParams, simulate_hadoop_job
from repro.simulate.iteration_model import IterationSimResult, iteration_comparison
from repro.simulate.profiles import KMEANS, PAGERANK, TERASORT, WORDCOUNT
from repro.simulate.report import SimJobReport
from repro.simulate.streaming_model import latency_distribution, topk_comparison

GB = 1e9  # the paper reports decimal gigabytes


def _terasort_pair(
    spec: ClusterSpec,
    data_bytes: float,
    block_size: float | None = None,
    reduce_slots: int | None = None,
    profile_resources: bool = False,
    cache_fraction: float = 1.0,
    ft_enabled: bool = False,
) -> tuple[SimJobReport, SimJobReport]:
    """Run the Hadoop/DataMPI TeraSort pair under one configuration."""
    if reduce_slots is not None:
        spec = spec.with_slots(spec.map_slots, reduce_slots)
    block = block_size or spec.default_block_size
    tasks = spec.num_slaves * spec.reduce_slots
    hadoop = simulate_hadoop_job(
        SimCluster(spec),
        HadoopSimParams(TERASORT, data_bytes, block, num_reduces=tasks,
                        name=f"terasort-{data_bytes / GB:.0f}GB"),
        profile_resources=profile_resources,
    )
    datampi = simulate_datampi_job(
        SimCluster(spec),
        DataMPISimParams(
            TERASORT, data_bytes, block, num_a_tasks=tasks,
            cache_fraction=cache_fraction, ft_enabled=ft_enabled,
            name=f"terasort-{data_bytes / GB:.0f}GB",
        ),
        profile_resources=profile_resources,
    )
    return hadoop, datampi


# -- Figure 8(a): HDFS block size tuning ---------------------------------------------


def fig8a_block_size_sweep(
    data_bytes: float = 96 * GB,
    block_sizes_mb: tuple[int, ...] = (64, 128, 256, 512, 1024),
) -> dict[int, dict[str, float]]:
    """TeraSort throughput (MB/s) vs block size; both peak at 256 MB."""
    out: dict[int, dict[str, float]] = {}
    for mb in block_sizes_mb:
        hadoop, datampi = _terasort_pair(TESTBED_A, data_bytes, block_size=mb * MiB)
        out[mb] = {
            "Hadoop": hadoop.throughput(data_bytes) / 1e6,
            "DataMPI": datampi.throughput(data_bytes) / 1e6,
        }
    return out


# -- Figure 8(b): concurrent A/reduce tasks per node --------------------------------------


def fig8b_task_sweep(
    per_task_bytes: float = 2 * GB,
    tasks_per_node: tuple[int, ...] = (2, 4, 6, 8),
) -> dict[int, dict[str, float]]:
    """Throughput vs reduce/A tasks per node at 2 GB per task; best at 4."""
    out: dict[int, dict[str, float]] = {}
    for k in tasks_per_node:
        data = per_task_bytes * k * TESTBED_A.num_slaves
        hadoop, datampi = _terasort_pair(TESTBED_A, data, reduce_slots=k)
        out[k] = {
            "Hadoop": hadoop.throughput(data) / 1e6,
            "DataMPI": datampi.throughput(data) / 1e6,
        }
    return out


# -- Figure 9: progress of 168 GB TeraSort ---------------------------------------------------


def fig9_progress(data_bytes: float = 168 * GB) -> dict[str, SimJobReport]:
    hadoop, datampi = _terasort_pair(TESTBED_A, data_bytes, profile_resources=True)
    return {"Hadoop": hadoop, "DataMPI": datampi}


# -- Figure 10(a): TeraSort across input sizes ------------------------------------------------


def fig10a_terasort_sweep(
    sizes_gb: tuple[int, ...] = (48, 72, 96, 120, 144, 168, 192),
) -> dict[int, dict[str, float]]:
    out: dict[int, dict[str, float]] = {}
    for gb in sizes_gb:
        hadoop, datampi = _terasort_pair(TESTBED_A, gb * GB)
        out[gb] = {"Hadoop": hadoop.duration, "DataMPI": datampi.duration}
    return out


def wordcount_comparison(data_bytes: float = 96 * GB) -> dict[str, float]:
    """The in-text WordCount claim: ~31% improvement."""
    spec = TESTBED_A
    tasks = spec.num_slaves * spec.reduce_slots
    hadoop = simulate_hadoop_job(
        SimCluster(spec),
        HadoopSimParams(WORDCOUNT, data_bytes, spec.default_block_size, tasks,
                        name="wordcount"),
        profile_resources=False,
    )
    datampi = simulate_datampi_job(
        SimCluster(spec),
        DataMPISimParams(WORDCOUNT, data_bytes, spec.default_block_size, tasks,
                         name="wordcount"),
        profile_resources=False,
    )
    return {"Hadoop": hadoop.duration, "DataMPI": datampi.duration}


# -- Figure 10(b): PageRank and K-means rounds ---------------------------------------------------


def fig10b_iteration(
    data_bytes: float = 40 * GB, rounds: int = 7
) -> dict[str, dict[str, IterationSimResult]]:
    return {
        "PageRank": iteration_comparison(TESTBED_A, PAGERANK, data_bytes, rounds),
        "K-means": iteration_comparison(TESTBED_A, KMEANS, data_bytes, rounds),
    }


# -- Figure 10(c): Top-K latency distributions -----------------------------------------------------


def fig10c_topk(
    rate_per_sec: float = 1000.0, duration: float = 120.0
) -> dict[str, dict]:
    latencies = topk_comparison(rate_per_sec, duration)
    return {
        name: {
            "latencies": values,
            "distribution": latency_distribution(values),
            "min": float(values.min()),
            "max": float(values.max()),
            "median": float(np.median(values)),
        }
        for name, values in latencies.items()
    }


# -- Figure 11: resource utilization profiles ---------------------------------------------------------


def fig11_resource_profiles(data_bytes: float = 168 * GB) -> dict[str, SimJobReport]:
    return fig9_progress(data_bytes)


def active_mean(series, threshold: float = 5e6) -> float:
    """Mean over samples where the resource was actually active."""
    values = np.asarray(series.values, dtype=float)
    active = values[values > threshold]
    return float(active.mean()) if active.size else 0.0


# -- Figure 12: spill-over efficiency ----------------------------------------------------------------


def fig12_spill_sweep(
    data_bytes: float = 168 * GB,
    fractions: tuple[float, ...] = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0),
) -> dict[float, float]:
    """DataMPI job time vs fraction of intermediate data cached in memory."""
    out: dict[float, float] = {}
    for fraction in fractions:
        report = simulate_datampi_job(
            SimCluster(TESTBED_A),
            DataMPISimParams(
                TERASORT, data_bytes, TESTBED_A.default_block_size,
                num_a_tasks=TESTBED_A.num_slaves * TESTBED_A.reduce_slots,
                cache_fraction=fraction, name=f"spill-{fraction:.1f}",
            ),
            profile_resources=False,
        )
        out[fraction] = report.duration
    return out


# -- Figure 13: fault tolerance --------------------------------------------------------------------------


@dataclass
class FtRecoveryReport:
    """Timing segments of a crash+recovery run (Fig 13)."""

    normal_before_crash: float
    job_restart: float
    checkpoint_reload: float
    normal_after_recover: float

    @property
    def total(self) -> float:
        return (
            self.normal_before_crash
            + self.job_restart
            + self.checkpoint_reload
            + self.normal_after_recover
        )


def fig13a_ft_efficiency(
    data_bytes: float = 100 * GB, nodes: int = 10
) -> dict[str, float]:
    """Default vs checkpoint-enabled DataMPI vs Hadoop (10 slaves, 100 GB)."""
    spec = TESTBED_A.with_slaves(nodes)
    tasks = spec.num_slaves * spec.reduce_slots
    base = simulate_datampi_job(
        SimCluster(spec),
        DataMPISimParams(TERASORT, data_bytes, spec.default_block_size, tasks,
                         name="ft-off"),
        profile_resources=False,
    )
    with_ft = simulate_datampi_job(
        SimCluster(spec),
        DataMPISimParams(TERASORT, data_bytes, spec.default_block_size, tasks,
                         ft_enabled=True, name="ft-on"),
        profile_resources=False,
    )
    hadoop = simulate_hadoop_job(
        SimCluster(spec),
        HadoopSimParams(TERASORT, data_bytes, spec.default_block_size, tasks,
                        name="ft-hadoop"),
        profile_resources=False,
    )
    return {
        "DataMPI": base.duration,
        "DataMPI-FT": with_ft.duration,
        "Hadoop": hadoop.duration,
    }


def fig13_recovery(
    checkpoint_fraction: float,
    data_bytes: float = 100 * GB,
    nodes: int = 10,
) -> FtRecoveryReport:
    """Kill the FT job once ``checkpoint_fraction`` of the O-phase data is
    persisted, restart, reload, and finish."""
    spec = TESTBED_A.with_slaves(nodes)
    tasks = spec.num_slaves * spec.reduce_slots
    full = simulate_datampi_job(
        SimCluster(spec),
        DataMPISimParams(TERASORT, data_bytes, spec.default_block_size, tasks,
                         ft_enabled=True, name="ft-full"),
        profile_resources=False,
    )
    o_start, o_end = full.phases["O"]
    o_time = o_end - o_start
    before_crash = o_start + o_time * checkpoint_fraction
    # restart: relaunch the persistent processes ("less than 3 seconds")
    restart = 2.5
    # reload: each node re-reads its persisted pairs and resends them; the
    # disk read dominates (network overlaps with it)
    per_node = data_bytes * checkpoint_fraction / spec.num_slaves
    reload_time = per_node / spec.node.disk_rate
    # remaining O work + the whole A phase
    after = o_time * (1 - checkpoint_fraction) + (full.duration - o_end)
    return FtRecoveryReport(before_crash, restart, reload_time, after)


# -- Figure 14: scalability ---------------------------------------------------------------------------------


def fig14a_strong_scale(
    data_bytes: float = 256 * GB, node_counts: tuple[int, ...] = (16, 32, 64)
) -> dict[int, dict[str, float]]:
    out: dict[int, dict[str, float]] = {}
    for n in node_counts:
        spec = TESTBED_B.with_slaves(n)
        hadoop, datampi = _terasort_pair(spec, data_bytes)
        out[n] = {"Hadoop": hadoop.duration, "DataMPI": datampi.duration}
    return out


def fig14b_weak_scale(
    per_task_bytes: float = 2 * GB, node_counts: tuple[int, ...] = (16, 32, 64)
) -> dict[int, dict[str, float]]:
    out: dict[int, dict[str, float]] = {}
    for n in node_counts:
        spec = TESTBED_B.with_slaves(n)
        data = per_task_bytes * spec.reduce_slots * n
        hadoop, datampi = _terasort_pair(spec, data)
        out[n] = {"Hadoop": hadoop.duration, "DataMPI": datampi.duration}
    return out
