"""Resource profiler: samples cluster counters into time series.

Plays the role of the paper's per-node monitoring (Fig 11, Fig 13b):
every ``interval`` virtual seconds it records per-node average CPU
utilization, disk read/write throughput, NIC throughput and memory
footprint.
"""

from __future__ import annotations

from typing import Generator

from repro.simulate.cluster import SimCluster
from repro.simulate.report import SimJobReport


class ResourceProfiler:
    """Attach to a cluster before running a simulated job."""

    def __init__(
        self,
        cluster: SimCluster,
        report: SimJobReport,
        interval: float = 2.0,
        until: "object | None" = None,
    ) -> None:
        self.cluster = cluster
        self.report = report
        self.interval = interval
        #: event whose triggering ends sampling (usually the job process);
        #: without it the sampler would keep the event queue alive forever
        self.until = until
        self._last = {
            "read": 0.0,
            "write": 0.0,
            "net": 0.0,
            "cpu_busy": 0.0,
        }
        cluster.sim.process(self._sample_loop())

    def _sample_loop(self) -> Generator:
        sim = self.cluster.sim
        n = self.cluster.num_nodes
        while self.until is None or not self.until.triggered:
            yield sim.timeout(self.interval)
            read = self.cluster.total_disk_read()
            write = self.cluster.total_disk_written()
            net = self.cluster.total_net_bytes()
            t = sim.now
            self.report.disk_read.add(
                t, (read - self._last["read"]) / self.interval / n
            )
            self.report.disk_write.add(
                t, (write - self._last["write"]) / self.interval / n
            )
            self.report.net.add(t, (net - self._last["net"]) / self.interval / n)
            self.report.cpu_util.add(
                t, 100.0 * self.cluster.total_cpu_busy() / self.cluster.total_cores()
            )
            self.report.mem.add(t, self.cluster.total_mem_used() / n)
            self._last.update(read=read, write=write, net=net)
