"""Simulated Hadoop 1.x MapReduce execution (the baseline's pipeline).

Mechanisms modelled, all straight from §IV-B/§IV-C:

* JVM-per-task startup, job submission overhead;
* map: local HDFS block read → map+sort CPU → **map output written to
  local disk** (competing with input reads on the single HDD);
* the **two-phase proxy shuffle**: reducers launch after a slow-start
  fraction of maps, then *pull* each completed map's segment over HTTP
  (per-stream throughput cap) from the map-side disk/page cache;
* reduce: merge passes to disk, reduce CPU, HDFS output write;
* memory: JVM heaps + page cache holding served map output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator

import math

from repro.common.units import MiB
from repro.simulate.cluster import SimCluster
from repro.simulate.engine import Event, Simulator
from repro.simulate.profiler import ResourceProfiler
from repro.simulate.profiles import (
    HADOOP_CONSTANTS,
    HDFS_OPEN_COST,
    SHUFFLE_FETCH_COST,
    WorkloadProfile,
)
from repro.simulate.report import SimJobReport

#: JVM heap per task slot + daemons (memory model baseline), bytes
_JVM_SLOT_BYTES = 1.2e9
_DAEMON_BYTES = 2.5e9
#: map-side sort buffer (io.sort.mb): output beyond it spills in multiple
#: passes and pays an extra on-disk merge -- the Figure 8(a) large-block
#: penalty
_IO_SORT_BYTES = 256 * MiB


@dataclass
class HadoopSimParams:
    """One simulated Hadoop job."""

    profile: WorkloadProfile
    data_bytes: float
    block_size: float
    num_reduces: int
    #: fraction of maps complete before reducers launch.  Hadoop 1.x sites
    #: commonly raise mapred.reduce.slowstart well above the 0.05 default
    #: so reducers do not squat on slots; it also concentrates the copy
    #: window, which is what the Fig 11(c) network profile shows.
    slowstart: float = 0.25
    name: str = "job"
    constants: "object" = field(default=HADOOP_CONSTANTS)


def simulate_hadoop_job(
    cluster: SimCluster, params: HadoopSimParams, profile_resources: bool = True
) -> SimJobReport:
    """Run one Hadoop job to completion in virtual time."""
    sim = cluster.sim
    report = SimJobReport(params.name, "Hadoop")
    job = _HadoopJobSim(cluster, params, report)
    done = sim.process(job.run())
    if profile_resources:
        ResourceProfiler(cluster, report, until=done)
    sim.run()
    assert done.triggered
    return report


class _HadoopJobSim:
    def __init__(
        self, cluster: SimCluster, params: HadoopSimParams, report: SimJobReport
    ) -> None:
        self.cluster = cluster
        self.params = params
        self.report = report
        self.sim: Simulator = cluster.sim
        self.consts = params.constants
        self.num_maps = max(1, math.ceil(params.data_bytes / params.block_size))
        self.map_output_total = (
            params.data_bytes * params.profile.map_output_ratio
        )
        #: completion event per map (for shuffle pulls) and its node
        self.map_done_events: list[Event] = []
        self.map_nodes: list[int] = []
        self.maps_completed = 0
        self.reduces_completed = 0
        #: per-reducer stage fraction (0, 1/3 copy, 2/3 merge, 1 done)
        self._reduce_stage: dict[int, float] = {}
        from repro.common.stats import TimeSeries

        self.report.progress["map"] = TimeSeries("map %")
        self.report.progress["reduce"] = TimeSeries("reduce %")
        # page-cache pressure: when per-node map output exceeds the RAM
        # left after JVM heaps, served shuffle segments re-read the disk
        ram_free = max(
            1.0, cluster.spec.node.ram_bytes - self._mem_baseline()
        )
        mapout_per_node = self.map_output_total / cluster.num_nodes
        self.miss_fraction = min(
            0.95,
            max(self.consts.shuffle_disk_miss, 1.0 - ram_free / mapout_per_node),
        )
        # reducer merge pressure: shuffled bytes per reducer far beyond the
        # reducer heap force extra on-disk merge passes
        shuffled_per_reduce = self.map_output_total / max(1, params.num_reduces)
        heap_comfort = 3e9
        pressure = max(1.0, shuffled_per_reduce / heap_comfort)
        self.merge_pressure = pressure
        #: page-cache proxy for the memory profile, per node
        self._cache_by_node: dict[int, float] = {}

    # -- helpers -------------------------------------------------------------------
    def _node(self, idx: int):
        return self.cluster.nodes[idx % self.cluster.num_nodes]

    def _mem_baseline(self) -> float:
        slots = self.cluster.spec.map_slots + self.cluster.spec.reduce_slots
        return _DAEMON_BYTES + slots * _JVM_SLOT_BYTES

    def run(self) -> Generator:
        sim = self.sim
        for node in self.cluster.nodes:
            node.mem.allocate(self._mem_baseline())
        yield sim.timeout(self.consts.job_overhead / 2)
        map_phase_start = sim.now
        self.report.phases["map"] = (map_phase_start, map_phase_start)

        # ---- map phase: per-node queues, slot-limited (data-local reads) -----
        per_node_maps: dict[int, list[int]] = {}
        for map_id in range(self.num_maps):
            node_idx = map_id % self.cluster.num_nodes
            per_node_maps.setdefault(node_idx, []).append(map_id)
            self.map_done_events.append(sim.event())
            self.map_nodes.append(node_idx)
        map_workers = []
        for node_idx, queue in per_node_maps.items():
            for slot in range(self.cluster.spec.map_slots):
                tasks = queue[slot :: self.cluster.spec.map_slots]
                if tasks:
                    map_workers.append(sim.process(self._map_worker(node_idx, tasks)))

        # ---- reducers launch at slow-start, pull as maps complete ----------------
        reduce_done: list[Event] = []
        per_node_reduces: dict[int, list[int]] = {}
        for reduce_id in range(self.params.num_reduces):
            node_idx = reduce_id % self.cluster.num_nodes
            per_node_reduces.setdefault(node_idx, []).append(reduce_id)
        reduce_phase_started = sim.event()
        for node_idx, queue in per_node_reduces.items():
            for slot in range(self.cluster.spec.reduce_slots):
                tasks = queue[slot :: self.cluster.spec.reduce_slots]
                if tasks:
                    worker = sim.process(
                        self._reduce_worker(node_idx, tasks, reduce_phase_started)
                    )
                    reduce_done.append(worker)

        yield sim.all_of(map_workers)
        map_phase_end = sim.now
        self.report.phases["map"] = (map_phase_start, map_phase_end)
        yield sim.all_of(reduce_done)
        yield sim.timeout(self.consts.job_overhead / 2)
        self.report.duration = sim.now
        # reduce phase spans slow-start launch to last reduce end
        if reduce_phase_started.triggered:
            self.report.phases["reduce"] = (reduce_phase_started.value, sim.now)
        for node in self.cluster.nodes:
            node.mem.release(self._mem_baseline())
            node.mem.release(self._cache_by_node.get(node.node_id, 0.0))

    # -- map side ---------------------------------------------------------------------
    def _map_worker(self, node_idx: int, map_ids: list[int]) -> Generator:
        node = self._node(node_idx)
        profile = self.params.profile
        for map_id in map_ids:
            block = min(
                self.params.block_size,
                self.params.data_bytes - map_id * self.params.block_size,
            )
            yield self.sim.timeout(self.consts.task_startup + HDFS_OPEN_COST)
            cpu_s = (
                (block / MiB)
                * profile.cpu_map_s_per_mb
                * profile.hadoop_cpu_factor
                * self.consts.cpu_factor_map
            )
            # the record reader prefetches: input read overlaps map compute
            yield self.sim.all_of(
                [node.disk.read(block), node.cpu.compute(cpu_s)]
            )
            out = block * profile.map_output_ratio
            to_disk = out * self.consts.map_output_to_disk
            if to_disk > 0:
                yield node.disk.write(to_disk)
                spills = math.ceil(to_disk / _IO_SORT_BYTES)
                if spills > 1:
                    # multi-spill maps re-read and re-write their whole
                    # output in the final merge (io.sort.mb exceeded)
                    yield node.disk.read(to_disk)
                    yield node.disk.write(to_disk)
                # served map output mostly lives in the page cache (§V-D)
                cache = to_disk * (1 - self.miss_fraction)
                node.mem.allocate(cache)
                self._cache_by_node[node.node_id] = (
                    self._cache_by_node.get(node.node_id, 0.0) + cache
                )
            self.maps_completed += 1
            self.report.progress["map"].add(
                self.sim.now, self.maps_completed / self.num_maps
            )
            self.map_done_events[map_id].succeed(self.sim.now)

    # -- reduce side --------------------------------------------------------------------
    def _reduce_worker(
        self, node_idx: int, reduce_ids: list[int], phase_started: Event
    ) -> Generator:
        sim = self.sim
        node = self._node(node_idx)
        profile = self.params.profile
        consts = self.consts
        segment = self.map_output_total / self.num_maps / self.params.num_reduces
        slowstart_count = max(1, int(self.params.slowstart * self.num_maps))
        for reduce_id in reduce_ids:
            # wait for slow-start before occupying the slot
            yield self.map_done_events[slowstart_count - 1]
            if not phase_started.triggered:
                phase_started.succeed(sim.now)
            yield sim.timeout(consts.task_startup)
            # ---- copy phase: parallel fetcher threads pull each map's
            # segment once available (Hadoop's 5 copier threads) ----------
            shuffled = 0.0
            fetchers = 5
            merge_writes = []
            for group_start in range(0, self.num_maps, fetchers):
                group = range(
                    group_start, min(group_start + fetchers, self.num_maps)
                )
                yield sim.all_of(
                    [sim.process(self._fetch(node, m, segment)) for m in group]
                )
                shuffled += segment * len(group)
                # the background merger spills fetched segments while the
                # copy continues (overlapped, not serialized)
                slot_pressure = max(1.0, self.cluster.spec.reduce_slots / 4)
                merge_frac = min(
                    1.6, consts.reduce_merge_disk * slot_pressure * self.merge_pressure
                )
                spill = segment * len(group) * merge_frac
                if spill > 0:
                    merge_writes.append(node.disk.write(spill))
            # shuffled data buffered in the reducer JVM until the task ends
            slot_pressure = max(1.0, self.cluster.spec.reduce_slots / 4)
            merge_frac = min(
                1.6, consts.reduce_merge_disk * slot_pressure * self.merge_pressure
            )
            node.mem.allocate(shuffled * max(0.0, 1 - merge_frac))
            self._progress_tick(reduce_id, 1 / 3)
            # ---- final merge pass reads the on-disk segments back -------------
            if merge_writes:
                yield sim.all_of(merge_writes)
            merge_bytes = shuffled * merge_frac
            if merge_bytes > 0:
                yield node.disk.read(merge_bytes)
            self._progress_tick(reduce_id, 2 / 3)
            # ---- reduce + output ----------------------------------------------
            cpu_s = (shuffled / MiB) * profile.cpu_reduce_s_per_mb * consts.cpu_factor_reduce
            yield node.cpu.compute(cpu_s)
            yield node.disk.write(shuffled * profile.reduce_output_ratio)
            node.mem.release(shuffled * max(0.0, 1 - merge_frac))
            self.reduces_completed += 1
            self._progress_tick(reduce_id, 1.0)

    def _fetch(self, node, map_id: int, segment: float) -> Generator:
        """One copier thread's HTTP GET of (map_id, partition)."""
        sim = self.sim
        consts = self.consts
        yield self.map_done_events[map_id]
        yield sim.timeout(SHUFFLE_FETCH_COST)
        src = self._node(self.map_nodes[map_id])
        miss = segment * self.miss_fraction
        if miss > 0:
            yield src.disk.read(miss)
        start = sim.now
        if src is not node:
            out_done = src.nic_out.transfer(segment)
            in_done = node.nic_in.transfer(segment)
            yield sim.all_of([out_done, in_done])
        if consts.shuffle_stream_cap:
            # Jetty per-stream ceiling: pad to the capped duration
            floor = segment / consts.shuffle_stream_cap
            elapsed = sim.now - start
            yield sim.timeout(max(0.0, floor - elapsed))

    def _progress_tick(self, reduce_id: int, stage: float) -> None:
        # aggregate copy/merge/reduce thirds across all reducers, like the
        # JobTracker's reduce progress bar
        self._reduce_stage[reduce_id] = stage
        current = sum(self._reduce_stage.values()) / max(1, self.params.num_reduces)
        series = self.report.progress["reduce"]
        prev = series.values[-1] if len(series) else 0.0
        series.add(self.sim.now, max(prev, min(1.0, current)))
