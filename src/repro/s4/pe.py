"""Processing Elements and events."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable


@dataclass(frozen=True)
class Event:
    """One keyed event on a named stream."""

    stream: str
    key: Any
    value: Any
    #: injection timestamp (perf_counter), for end-to-end latency
    created_at: float = field(default_factory=time.perf_counter)


class ProcessingElement:
    """Base PE.  Subclasses override :meth:`on_event`.

    One instance exists per (prototype, key) pair — S4's keyed-PE model.
    ``emit`` routes a new event into the app; it is injected by the
    runtime when the instance is created.
    """

    def __init__(self, key: Any) -> None:
        self.key = key
        self.events_seen = 0
        self._emit: Callable[[str, Any, Any], None] | None = None

    # -- wiring -------------------------------------------------------------
    def attach(self, emit: Callable[[str, Any, Any], None]) -> None:
        self._emit = emit

    def emit(self, stream: str, key: Any, value: Any) -> None:
        if self._emit is None:
            raise RuntimeError("PE not attached to an app")
        self._emit(stream, key, value)

    # -- user API ------------------------------------------------------------
    def on_event(self, event: Event) -> None:
        """Handle one event (override)."""
        raise NotImplementedError

    def on_shutdown(self) -> None:
        """Called once when the app drains (override for final output)."""

    def _dispatch(self, event: Event) -> None:
        self.events_seen += 1
        self.on_event(event)
