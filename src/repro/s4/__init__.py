"""Mini-S4: the streaming baseline (S4 v0.5 analogue).

S4's model: *Processing Elements* (PEs) are keyed event handlers — one
PE instance per distinct key — distributed over processing nodes by key
hash.  Adapters inject external events into named streams; PEs consume
events and may emit onto downstream streams.

The mini version keeps that architecture with one worker thread per
node and per-event timestamps, so Top-K end-to-end latency
distributions (Figure 10c) can be measured functionally and modelled in
the DES.
"""

from repro.s4.app import S4App, S4Node
from repro.s4.pe import Event, ProcessingElement

__all__ = ["S4App", "S4Node", "ProcessingElement", "Event"]
