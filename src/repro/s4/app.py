"""The S4 application runtime: nodes, key routing, adapters."""

from __future__ import annotations

import queue
import threading
from typing import Any, Callable, Type

from repro.core.partition import hash_partitioner
from repro.s4.pe import Event, ProcessingElement

_SHUTDOWN = object()


class S4Node:
    """One processing node: an input queue drained by a worker thread."""

    def __init__(self, node_id: int, app: "S4App") -> None:
        self.node_id = node_id
        self.app = app
        self.inbox: "queue.Queue[Any]" = queue.Queue()
        #: (stream, key) -> PE instance
        self.instances: dict[tuple[str, Any], ProcessingElement] = {}
        self.events_processed = 0
        self._thread = threading.Thread(
            target=self._loop, daemon=True, name=f"s4-node-{node_id}"
        )
        self._thread.start()

    def _loop(self) -> None:
        while True:
            item = self.inbox.get()
            if item is _SHUTDOWN:
                for pe in self.instances.values():
                    pe.on_shutdown()
                return
            event: Event = item
            try:
                for stream, prototype in self.app.subscriptions(event.stream):
                    pe = self._instance(stream, prototype, event.key)
                    pe._dispatch(event)
                self.events_processed += 1
                self.app.note_latency(event)
            finally:
                # cascaded emits inside _dispatch were counted before this
                # decrement, so the pending count can never dip to zero
                # while downstream events are still in flight
                self.app._event_done()

    def _instance(
        self, stream: str, prototype: Type[ProcessingElement], key: Any
    ) -> ProcessingElement:
        ident = (stream, key)
        pe = self.instances.get(ident)
        if pe is None:
            pe = prototype(key)
            pe.attach(self.app.inject)
            self.instances[ident] = pe
        return pe

    def join(self, timeout: float | None = None) -> None:
        self._thread.join(timeout)


class S4App:
    """A running S4 application.

    >>> app = S4App(num_nodes=2)
    >>> app.subscribe("words", CounterPE)
    >>> app.inject("words", "cat", 1)   # adapter side
    >>> app.shutdown()
    """

    def __init__(self, num_nodes: int = 2) -> None:
        self._subs: dict[str, list[tuple[str, Type[ProcessingElement]]]] = {}
        self._latency_sink: Callable[[float], None] | None = None
        self._lock = threading.Lock()
        self._quiet = threading.Condition(self._lock)
        self._pending = 0
        self.events_injected = 0
        self.nodes = [S4Node(i, self) for i in range(num_nodes)]

    # -- topology -------------------------------------------------------------
    def subscribe(self, stream: str, prototype: Type[ProcessingElement]) -> None:
        """Register a PE prototype on a stream."""
        self._subs.setdefault(stream, []).append((stream, prototype))

    def subscriptions(self, stream: str) -> list[tuple[str, Type[ProcessingElement]]]:
        return self._subs.get(stream, [])

    def on_latency(self, sink: Callable[[float], None]) -> None:
        """Install an end-to-end latency observer (seconds per event)."""
        self._latency_sink = sink

    def note_latency(self, event: Event) -> None:
        if self._latency_sink is not None:
            import time

            self._latency_sink(time.perf_counter() - event.created_at)

    # -- data path ------------------------------------------------------------
    def inject(self, stream: str, key: Any, value: Any) -> None:
        """Adapter/PE entry point: route an event to its node by key hash."""
        if stream not in self._subs:
            return  # no subscribers; S4 drops the event
        node = self.nodes[hash_partitioner(key, value, len(self.nodes))]
        with self._lock:
            self._pending += 1
            self.events_injected += 1
        node.inbox.put(Event(stream, key, value))

    def _event_done(self) -> None:
        with self._lock:
            self._pending -= 1
            if self._pending == 0:
                self._quiet.notify_all()

    # -- lifecycle ----------------------------------------------------------------
    def shutdown(self, timeout: float = 30.0) -> None:
        """Quiesce (drain cascading events), deliver on_shutdown, stop nodes."""
        import time

        deadline = time.monotonic() + timeout
        with self._lock:
            while self._pending > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TimeoutError("S4 app did not quiesce")
                self._quiet.wait(remaining)
        for node in self.nodes:
            node.inbox.put(_SHUTDOWN)
        for node in self.nodes:
            node.join(timeout)

    def total_processed(self) -> int:
        return sum(node.events_processed for node in self.nodes)

    def all_instances(self) -> list[ProcessingElement]:
        return [pe for node in self.nodes for pe in node.instances.values()]
