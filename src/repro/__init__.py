"""DataMPI reproduction: extending MPI to Hadoop-like Big Data computing.

A full Python implementation of the IPDPS 2014 paper's system and its
evaluation substrates.  The most-used entry points are re-exported here:

>>> from repro import MPI_D, mpidrun, mapreduce_job, Mode

Subpackages:

* :mod:`repro.core` — DataMPI itself (the paper's contribution)
* :mod:`repro.mpi` — the from-scratch MPI substrate
* :mod:`repro.hdfs` / :mod:`repro.hadoop` — the Hadoop baseline
* :mod:`repro.s4` — the streaming baseline
* :mod:`repro.workloads` — the five paper benchmarks on every engine
* :mod:`repro.simulate` — the testbed simulator behind Figures 8-14
* :mod:`repro.net` / :mod:`repro.rpc` — Figure 1's primitive layers
"""

from repro.core import (
    MPI_D,
    MPI_D_Constants,
    Mode,
    DataMPIJob,
    JobResult,
    common_job,
    mapreduce_job,
    mpidrun,
)

__version__ = "1.0.0"

__all__ = [
    "MPI_D",
    "MPI_D_Constants",
    "Mode",
    "DataMPIJob",
    "JobResult",
    "common_job",
    "mapreduce_job",
    "mpidrun",
    "__version__",
]
