"""Top-K over a word stream (Streaming model): S4 vs DataMPI Streaming.

The paper's Figure 10(c) compares end-to-end processing latency
distributions at 1 K msg/sec (100 B messages).  Both functional engines
record per-event latencies; the distribution-scale comparison is made by
the DES streaming model (the threaded engines share one Python process,
so their absolute latencies are not comparable the way two clusters are).
"""

from __future__ import annotations

import heapq
import threading
import time
from collections import Counter
from typing import Any

import numpy as np

from repro.core import DataMPIJob, Mode, mpidrun
from repro.core.metrics import JobResult
from repro.s4.app import S4App
from repro.s4.pe import Event, ProcessingElement


def generate_stream(num_events: int, vocab: int = 50, seed: int = 3) -> list[str]:
    """Zipf-skewed word stream (hot keys exist, as in real feeds)."""
    rng = np.random.default_rng(seed)
    ranks = np.minimum(rng.zipf(1.4, size=num_events) - 1, vocab - 1)
    return [f"item{r:03d}" for r in ranks]


def topk_reference(words: list[str], k: int) -> list[tuple[str, int]]:
    """Deterministic top-k: count desc, then word asc for ties."""
    counts = Counter(words)
    return sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))[:k]


def merge_topk(partials: list[tuple[str, int]], k: int) -> list[tuple[str, int]]:
    return sorted(partials, key=lambda kv: (-kv[1], kv[0]))[:k]


# -- S4 ------------------------------------------------------------------------


class WordCountPE(ProcessingElement):
    """Keyed counter: one instance per word."""

    def __init__(self, key: Any) -> None:
        super().__init__(key)
        self.count = 0

    def on_event(self, event: Event) -> None:
        self.count += 1
        # push the updated count downstream to the aggregator
        self.emit("counts", "topk", (self.key, self.count))


class TopKAggregatorPE(ProcessingElement):
    """Singleton aggregator holding latest counts; top-k on shutdown."""

    results: list[tuple[str, int]] = []
    k = 10

    def __init__(self, key: Any) -> None:
        super().__init__(key)
        self.latest: dict[str, int] = {}

    def on_event(self, event: Event) -> None:
        word, count = event.value
        self.latest[word] = count

    def on_shutdown(self) -> None:
        TopKAggregatorPE.results = sorted(
            self.latest.items(), key=lambda kv: (-kv[1], kv[0])
        )[: self.k]


def topk_s4(
    words: list[str], k: int, num_nodes: int = 2, rate_per_sec: float | None = None
) -> tuple[list[tuple[str, int]], list[float]]:
    """Run Top-K on mini-S4; returns (top-k, per-event latencies)."""
    TopKAggregatorPE.k = k
    TopKAggregatorPE.results = []
    app = S4App(num_nodes=num_nodes)
    latencies: list[float] = []
    lock = threading.Lock()

    def observe(latency: float) -> None:
        with lock:
            latencies.append(latency)

    app.on_latency(observe)
    app.subscribe("words", WordCountPE)
    app.subscribe("counts", TopKAggregatorPE)
    delay = 1.0 / rate_per_sec if rate_per_sec else 0.0
    for word in words:  # the adapter
        app.inject("words", word, 1)
        if delay:
            time.sleep(delay)
    app.shutdown()
    return TopKAggregatorPE.results, latencies


# -- DataMPI Streaming mode ---------------------------------------------------------


def topk_datampi(
    words: list[str],
    k: int,
    o_tasks: int,
    a_tasks: int,
    nprocs: int | None = None,
    rate_per_sec: float | None = None,
) -> tuple[JobResult, list[tuple[str, int]], list[float]]:
    """Streaming-mode Top-K; returns (result, top-k, per-record latencies)."""
    partials: list[tuple[str, int]] = []
    latencies: list[float] = []
    lock = threading.Lock()
    delay = 1.0 / rate_per_sec if rate_per_sec else 0.0

    def o_fn(ctx):
        for index in range(ctx.rank, len(words), ctx.o_size):
            ctx.send(words[index], time.perf_counter())
            if delay:
                time.sleep(delay)

    def a_fn(ctx):
        counts: dict[str, int] = {}
        local_latencies: list[float] = []
        for word, sent_at in ctx.recv_iter():
            counts[word] = counts.get(word, 0) + 1
            local_latencies.append(time.perf_counter() - sent_at)
        top = heapq.nsmallest(k, counts.items(), key=lambda kv: (-kv[1], kv[0]))
        with lock:
            partials.extend(top)
            latencies.extend(local_latencies)

    job = DataMPIJob(
        name="topk",
        o_fn=o_fn,
        a_fn=a_fn,
        o_tasks=o_tasks,
        a_tasks=a_tasks,
        mode=Mode.STREAMING,
    )
    result = mpidrun(job, nprocs=nprocs, raise_on_error=True)
    return result, merge_topk(partials, k), latencies
