"""Benchmark workloads (paper §V).

Five applications spanning the three Big Data computing models the paper
evaluates, each with a DataMPI implementation, a baseline implementation
(mini-Hadoop or mini-S4), and an independent reference for correctness:

====================  ============  =======================================
Workload              Model         Reference
====================  ============  =======================================
TeraSort              MapReduce     global byte-order check
WordCount             MapReduce     ``collections.Counter``
PageRank              Iteration     ``networkx.pagerank``
K-means               Iteration     NumPy Lloyd iteration
Top-K                 Streaming     heap over full stream
Sort (Listing 1)      Common        ``sorted``
====================  ============  =======================================
"""

from repro.workloads.teragen import teragen, teragen_to_dfs, verify_sorted_records
from repro.workloads.terasort import (
    sample_boundaries,
    terasort_datampi,
    terasort_hadoop,
    verify_terasort_output,
)
from repro.workloads.wordcount import (
    generate_text,
    wordcount_datampi,
    wordcount_hadoop,
    wordcount_reference,
)
from repro.workloads.pagerank import (
    generate_graph,
    pagerank_datampi,
    pagerank_hadoop,
    pagerank_reference,
)
from repro.workloads.kmeans import (
    generate_points,
    kmeans_datampi,
    kmeans_hadoop,
    kmeans_reference,
)
from repro.workloads.topk import (
    generate_stream,
    topk_datampi,
    topk_reference,
    topk_s4,
)

__all__ = [
    "teragen",
    "teragen_to_dfs",
    "verify_sorted_records",
    "sample_boundaries",
    "terasort_datampi",
    "terasort_hadoop",
    "verify_terasort_output",
    "generate_text",
    "wordcount_datampi",
    "wordcount_hadoop",
    "wordcount_reference",
    "generate_graph",
    "pagerank_datampi",
    "pagerank_hadoop",
    "pagerank_reference",
    "generate_points",
    "kmeans_datampi",
    "kmeans_hadoop",
    "kmeans_reference",
    "generate_stream",
    "topk_datampi",
    "topk_s4",
    "topk_reference",
]
