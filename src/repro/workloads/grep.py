"""Distributed Grep — the classic MapReduce example from Dean & Ghemawat.

Map emits (matching line, 1) for every line containing the pattern;
reduce counts occurrences per distinct matching line.  Part of the
paper's "more applications" future-work direction; included here on both
engines with a plain-Python reference.
"""

from __future__ import annotations

import re
import threading
from collections import Counter

from repro.core import mapreduce_job, mpidrun
from repro.core.metrics import JobResult
from repro.hadoop.engine import MiniHadoopCluster
from repro.hadoop.io_formats import TextInputFormat, compute_splits
from repro.hadoop.job import HadoopJob, HadoopJobResult
from repro.hdfs.cluster import MiniDFSCluster


def grep_reference(lines: list[str], pattern: str) -> dict[str, int]:
    regex = re.compile(pattern)
    counts: Counter = Counter(line for line in lines if regex.search(line))
    return dict(counts)


def _make_mapper(pattern: str):
    regex = re.compile(pattern)

    def mapper(_key, line, emit):
        if regex.search(line):
            emit(line, 1)

    return mapper


def _reducer(line, counts, emit):
    emit(line, sum(counts))


def grep_datampi(
    dfs_cluster: MiniDFSCluster,
    input_path: str,
    pattern: str,
    o_tasks: int,
    a_tasks: int,
    nprocs: int | None = None,
) -> tuple[JobResult, dict[str, int]]:
    """Grep over HDFS text as a MapReduce-mode DataMPI job."""
    dfs0 = dfs_cluster.client(None)
    splits = compute_splits(dfs0, input_path)
    fmt = TextInputFormat()
    out: dict[str, int] = {}
    lock = threading.Lock()

    def provider(rank: int, size: int):
        dfs = dfs_cluster.client(None)
        for index in range(rank, len(splits), size):
            yield from fmt.read_split(dfs, splits[index])

    def collector(_rank: int, line: str, count: int) -> None:
        with lock:
            out[line] = count

    job = mapreduce_job(
        "grep",
        provider,
        _make_mapper(pattern),
        _reducer,
        collector,
        o_tasks=o_tasks,
        a_tasks=a_tasks,
        combiner=lambda line, counts: [sum(counts)],
    )
    result = mpidrun(job, nprocs=nprocs, raise_on_error=True)
    return result, out


def grep_hadoop(
    hadoop: MiniHadoopCluster,
    input_path: str,
    output_path: str,
    pattern: str,
    num_reduces: int,
) -> tuple[HadoopJobResult, dict[str, int]]:
    job = HadoopJob(
        name="grep",
        input_path=input_path,
        output_path=output_path,
        mapper=_make_mapper(pattern),
        reducer=_reducer,
        combiner=lambda line, counts: [sum(counts)],
        num_reduces=num_reduces,
    )
    result = hadoop.run_job(job)
    counts = {k: int(v) for k, v in hadoop.read_output(job)}
    return result, counts
