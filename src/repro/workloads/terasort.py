"""TeraSort on both engines.

TeraSort = total-order sort of TeraGen records: sample the input to pick
range-partition boundaries, shuffle each record to its range, sort within
ranges; the concatenation of the output partitions is globally sorted.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from typing import Any

from repro.core import DataMPIJob, Mode, mpidrun
from repro.core.constants import MPI_D_Constants as K
from repro.core.metrics import JobResult
from repro.core.partition import range_partitioner
from repro.hadoop.engine import MiniHadoopCluster
from repro.hadoop.io_formats import (
    BytesConcatOutputFormat,
    FixedLengthRecordFormat,
    compute_splits,
)
from repro.hadoop.job import HadoopJob, HadoopJobResult
from repro.hdfs.cluster import MiniDFSCluster
from repro.serde.comparators import bytes_compare
from repro.workloads.teragen import KEY_LEN, RECORD_LEN


def sample_boundaries(
    dfs: Any, path: str, num_partitions: int, sample_records: int = 1000
) -> list[bytes]:
    """TotalOrderPartitioner-style sampling: read a prefix of the input,
    sort the sampled keys, take ``num_partitions - 1`` quantiles."""
    if num_partitions < 2:
        return []
    blocks = dfs.namenode.get_block_locations(path)
    keys: list[bytes] = []
    for i in range(len(blocks)):
        data = dfs.read_blocks(path, [i])
        for pos in range(0, len(data), RECORD_LEN):
            keys.append(data[pos : pos + KEY_LEN])
            if len(keys) >= sample_records:
                break
        if len(keys) >= sample_records:
            break
    keys.sort()
    step = len(keys) / num_partitions
    return [keys[int(step * (i + 1))] for i in range(num_partitions - 1)]


# -- DataMPI ---------------------------------------------------------------------


def terasort_datampi(
    dfs_cluster: MiniDFSCluster,
    input_path: str,
    output_path: str,
    o_tasks: int,
    a_tasks: int,
    nprocs: int | None = None,
    conf: dict | None = None,
) -> JobResult:
    """TeraSort as a MapReduce-mode DataMPI job.

    O tasks load HDFS splits "by their ranks and the communicator size"
    (§IV-B's utility function); A tasks receive their range already
    key-sorted by the shuffle and spill an output part to local disk —
    the MiniDFS block store is in-memory, so with
    ``mpi.d.launcher=processes`` a worker-side ``write_file`` would be
    invisible to the driver.  The driver commits the local parts into
    HDFS after the job, on both backends alike.
    """
    dfs0 = dfs_cluster.client(None)
    boundaries = sample_boundaries(dfs0, input_path, a_tasks)
    splits = compute_splits(dfs0, input_path)
    fmt = FixedLengthRecordFormat(RECORD_LEN, KEY_LEN)
    spill_dir = tempfile.mkdtemp(prefix="datampi-terasort-")

    def o_fn(ctx):
        dfs = dfs_cluster.client(None)
        for index in range(ctx.rank, len(splits), ctx.o_size):
            for key, value in fmt.read_split(dfs, splits[index]):
                ctx.send(key, value)

    def a_fn(ctx):
        out = bytearray()
        batch = ctx.recv_batch()
        if batch is not None:
            # raw-batch fast path: the merged partition is one contiguous
            # byte block; write key/value slices without materializing a
            # single Python object per record
            for key, value in batch.iter_views():
                out += key
                out += value
        else:
            for key, value in ctx.recv_iter():
                out += key + value
        with open(os.path.join(spill_dir, f"part-{ctx.rank:05d}"), "wb") as f:
            f.write(bytes(out))

    job_conf = dict(conf or {})
    # keys and values are already the application's bytes: shuffle them as
    # raw record batches (no serializer framing on the wire or in spills)
    job_conf.setdefault(K.SHUFFLE_RAW, True)
    job = DataMPIJob(
        name="terasort",
        o_fn=o_fn,
        a_fn=a_fn,
        o_tasks=o_tasks,
        a_tasks=a_tasks,
        mode=Mode.MAPREDUCE,
        conf=job_conf,
        partitioner=range_partitioner(boundaries),
        comparator=bytes_compare,
    )
    try:
        result = mpidrun(job, nprocs=nprocs, raise_on_error=True)
        for name in sorted(os.listdir(spill_dir)):
            with open(os.path.join(spill_dir, name), "rb") as f:
                dfs0.write_file(f"{output_path}/{name}", f.read())
    finally:
        shutil.rmtree(spill_dir, ignore_errors=True)
    return result


# -- Hadoop -----------------------------------------------------------------------


def terasort_hadoop(
    hadoop: MiniHadoopCluster,
    input_path: str,
    output_path: str,
    num_reduces: int,
) -> HadoopJobResult:
    """TeraSort as a mini-Hadoop job (identity map/reduce + range partition)."""
    dfs0 = hadoop.dfs_cluster.client(None)
    boundaries = sample_boundaries(dfs0, input_path, num_reduces)
    part = range_partitioner(boundaries)

    def mapper(key, value, emit):
        emit(key, value)

    def reducer(key, values, emit):
        for value in values:
            emit(key, value)

    job = HadoopJob(
        name="terasort",
        input_path=input_path,
        output_path=output_path,
        mapper=mapper,
        reducer=reducer,
        num_reduces=num_reduces,
        partitioner=part,
        comparator=bytes_compare,
        input_format=FixedLengthRecordFormat(RECORD_LEN, KEY_LEN),
        output_format=BytesConcatOutputFormat(),
    )
    return hadoop.run_job(job)


# -- verification ---------------------------------------------------------------------


def verify_terasort_output(dfs: Any, output_path: str, expected_records: int) -> bool:
    """Global order check: each part sorted, parts ordered, count exact."""
    paths = dfs.listdir(output_path)
    total = 0
    prev_last: bytes | None = None
    for path in paths:  # listdir sorts lexicographically = partition order
        data = dfs.read_file(path)
        if len(data) % RECORD_LEN:
            return False
        keys = [
            data[pos : pos + KEY_LEN] for pos in range(0, len(data), RECORD_LEN)
        ]
        total += len(keys)
        if keys != sorted(keys):
            return False
        if keys:
            if prev_last is not None and keys[0] < prev_last:
                return False
            prev_last = keys[-1]
    return total == expected_records
