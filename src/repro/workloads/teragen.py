"""TeraGen: the TeraSort input generator.

Standard TeraSort records are 100 bytes: a 10-byte random key and a
90-byte value carrying the record number.  Generation is deterministic
per (seed, record index) so distributed generators and verifiers agree
without coordination.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import DataMPIError
from repro.hdfs.client import DFSClient

RECORD_LEN = 100
KEY_LEN = 10
VALUE_LEN = RECORD_LEN - KEY_LEN


_M64 = np.uint64(0xFFFFFFFFFFFFFFFF)


def _splitmix64(x: np.ndarray) -> np.ndarray:
    """Counter-based mixing: record i's key is a pure function of (seed, i),
    so distributed generators producing disjoint ranges agree exactly."""
    x = (x + np.uint64(0x9E3779B97F4A7C15)) & _M64
    x = ((x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)) & _M64
    x = ((x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)) & _M64
    return x ^ (x >> np.uint64(31))


def teragen(num_records: int, seed: int = 42, start: int = 0) -> bytes:
    """Generate records ``start .. start+num_records`` as one byte blob."""
    idx = np.arange(start, start + num_records, dtype=np.uint64)
    columns = []
    for j in range(KEY_LEN):
        z = _splitmix64(idx * np.uint64(KEY_LEN) + np.uint64(j + seed * 1013))
        # printable-ish random key bytes, like teragen's 10-byte keys
        columns.append((np.uint64(32) + z % np.uint64(95)).astype(np.uint8))
    keys = np.stack(columns, axis=1)
    values = np.zeros((num_records, VALUE_LEN), dtype=np.uint8)
    for i in range(num_records):
        text = f"{start + i:020d}".encode().ljust(VALUE_LEN, b".")
        values[i] = np.frombuffer(text, dtype=np.uint8)
    records = np.concatenate([keys, values], axis=1)
    return records.tobytes()


def teragen_records(num_records: int, seed: int = 42, start: int = 0):
    """The same data as (key, value) byte pairs."""
    blob = teragen(num_records, seed, start)
    for pos in range(0, len(blob), RECORD_LEN):
        yield blob[pos : pos + KEY_LEN], blob[pos + KEY_LEN : pos + RECORD_LEN]


def teragen_to_dfs(
    dfs: DFSClient,
    path: str,
    num_records: int,
    seed: int = 42,
) -> None:
    """Write a TeraSort input file to mini-HDFS.

    The DFS block size must be a multiple of the record length so fixed-
    length splits stay record-aligned (real TeraSort relies on the same
    arrangement).
    """
    if dfs.namenode.block_size % RECORD_LEN:
        raise DataMPIError(
            f"block size {dfs.namenode.block_size} is not a multiple of "
            f"{RECORD_LEN}-byte TeraSort records"
        )
    with dfs.create(path) as out:
        written = 0
        chunk = max(1, dfs.namenode.block_size // RECORD_LEN)
        while written < num_records:
            n = min(chunk, num_records - written)
            out.write(teragen(n, seed, start=written))
            written += n


def verify_sorted_records(blob: bytes) -> bool:
    """True if a record blob is key-sorted."""
    prev = None
    for pos in range(0, len(blob), RECORD_LEN):
        key = blob[pos : pos + KEY_LEN]
        if prev is not None and key < prev:
            return False
        prev = key
    return True
