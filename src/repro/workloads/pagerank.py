"""PageRank on both engines (Iteration model), with a networkx reference.

The DataMPI version is a single Iteration-mode job that keeps graph
structure and ranks in process-local state across rounds; the Hadoop
version (like the paper's "self-developed" Hadoop PageRank) runs one
MapReduce job per round, rewriting the whole graph through HDFS each
time — the exact overhead iteration-aware systems avoid.
"""

from __future__ import annotations

import threading
from typing import Any

import numpy as np

from repro.core import DataMPIJob, Mode, mpidrun
from repro.core.metrics import JobResult
from repro.hadoop.engine import MiniHadoopCluster
from repro.hadoop.job import HadoopJob
from repro.hdfs.cluster import MiniDFSCluster

ALPHA = 0.85


def generate_graph(
    num_nodes: int, mean_out_degree: int = 4, seed: int = 11
) -> dict[int, list[int]]:
    """Random digraph where every node has >=1 out-edge (no dangling mass)."""
    rng = np.random.default_rng(seed)
    graph: dict[int, list[int]] = {}
    for node in range(num_nodes):
        degree = 1 + rng.poisson(mean_out_degree - 1)
        degree = min(degree, num_nodes - 1)
        targets = rng.choice(num_nodes - 1, size=degree, replace=False)
        # shift to skip self-loops
        graph[node] = [int(t) if t < node else int(t) + 1 for t in targets]
    return graph


def pagerank_reference(
    graph: dict[int, list[int]], rounds: int, alpha: float = ALPHA
) -> dict[int, float]:
    """Plain power iteration with the same update rule and round count."""
    n = len(graph)
    ranks = {node: 1.0 / n for node in graph}
    for _ in range(rounds):
        sums = {node: 0.0 for node in graph}
        for node, neighbors in graph.items():
            share = ranks[node] / len(neighbors)
            for dst in neighbors:
                sums[dst] += share
        ranks = {node: (1 - alpha) / n + alpha * sums[node] for node in graph}
    return ranks


def pagerank_networkx(
    graph: dict[int, list[int]], alpha: float = ALPHA
) -> dict[int, float]:
    """Converged networkx ranks (cross-validation of the update rule)."""
    import networkx as nx

    g = nx.DiGraph()
    g.add_nodes_from(graph)
    for node, neighbors in graph.items():
        g.add_edges_from((node, dst) for dst in neighbors)
    return nx.pagerank(g, alpha=alpha)


# -- DataMPI Iteration mode --------------------------------------------------------


def pagerank_datampi(
    graph: dict[int, list[int]],
    rounds: int,
    o_tasks: int,
    a_tasks: int,
    nprocs: int | None = None,
    alpha: float = ALPHA,
) -> tuple[JobResult, dict[int, float]]:
    """One Iteration-mode job; returns (result, final ranks)."""
    n = len(graph)
    final: dict[int, float] = {}
    lock = threading.Lock()

    def int_or_pair_partitioner(key: Any, value: Any, num: int) -> int:
        # fwd keys are destination node ids; bwd keys are node ids too
        return key % num

    def o_fn(ctx):
        owned = [node for node in graph if node % ctx.o_size == ctx.rank]
        if ctx.round == 0:
            ranks = {node: 1.0 / n for node in owned}
        else:
            ranks = dict(ctx.recv_iter())  # (node, new_rank) from A
        ctx.state[("pr", ctx.rank)] = ranks
        for node in owned:
            neighbors = graph[node]
            share = ranks[node] / len(neighbors)
            for dst in neighbors:
                ctx.send(dst, share)
            # ensure nodes without in-links still get re-ranked
            ctx.send(node, 0.0)

    def a_fn(ctx):
        sums: dict[int, float] = {}
        for node, contribution in ctx.recv_iter():
            sums[node] = sums.get(node, 0.0) + contribution
        new_ranks = {
            node: (1 - alpha) / n + alpha * total for node, total in sums.items()
        }
        if ctx.round < rounds - 1:
            for node, rank in new_ranks.items():
                ctx.send(node, rank)
        else:
            with lock:
                final.update(new_ranks)

    job = DataMPIJob(
        name="pagerank",
        o_fn=o_fn,
        a_fn=a_fn,
        o_tasks=o_tasks,
        a_tasks=a_tasks,
        mode=Mode.ITERATION,
        rounds=rounds,
        partitioner=int_or_pair_partitioner,
    )
    result = mpidrun(job, nprocs=nprocs, raise_on_error=True)
    return result, final


# -- Hadoop: one MapReduce job per round ----------------------------------------------


def _format_line(node: int, rank: float, neighbors: list[int]) -> str:
    adj = ",".join(map(str, neighbors))
    return f"{node} {rank:.17g} {adj}"


def _parse_line(line: str) -> tuple[int, float, list[int]]:
    # round 0 lines are space-separated; later rounds come back from the
    # KeyValueTextOutputFormat with a tab between node and the rest
    node_s, rank_s, adj_s = line.replace("\t", " ").split(" ", 2)
    neighbors = [int(x) for x in adj_s.split(",")] if adj_s else []
    return int(node_s), float(rank_s), neighbors


def pagerank_hadoop(
    hadoop: MiniHadoopCluster,
    graph: dict[int, list[int]],
    rounds: int,
    num_reduces: int,
    alpha: float = ALPHA,
    workdir: str = "/pagerank",
) -> tuple[list[Any], dict[int, float]]:
    """``rounds`` chained MapReduce jobs; returns (per-round results, ranks)."""
    n = len(graph)
    dfs = hadoop.dfs_cluster.client(0)
    lines = [_format_line(node, 1.0 / n, adj) for node, adj in graph.items()]
    dfs.write_file(f"{workdir}/iter0/part-r-00000", ("\n".join(lines) + "\n").encode())

    def mapper(_key, line, emit):
        node, rank, neighbors = _parse_line(line)
        emit(node, ("S", neighbors))  # graph structure travels every round
        share = rank / len(neighbors)
        for dst in neighbors:
            emit(dst, ("C", share))

    def reducer(node, values, emit):
        neighbors: list[int] = []
        total = 0.0
        for kind, payload in values:
            if kind == "S":
                neighbors = payload
            else:
                total += payload
        rank = (1 - alpha) / n + alpha * total
        emit(node, _format_line(node, rank, neighbors).split(" ", 1)[1])

    results = []
    for round_no in range(rounds):
        job = HadoopJob(
            name=f"pagerank-{round_no}",
            input_path=f"{workdir}/iter{round_no}",
            output_path=f"{workdir}/iter{round_no + 1}",
            mapper=mapper,
            reducer=reducer,
            num_reduces=num_reduces,
        )
        result = hadoop.run_job(job)
        results.append(result)
        if not result.success:
            return results, {}
    ranks: dict[int, float] = {}
    for path in dfs.listdir(f"{workdir}/iter{rounds}"):
        for node, rank in _parse_output(dfs.read_file(path)):
            ranks[node] = rank
    return results, ranks


def _parse_output(data: bytes) -> list[tuple[int, float]]:
    out = []
    for line in data.decode().splitlines():
        node_s, rest = line.split("\t", 1)
        rank_s = rest.split(" ", 1)[0]
        out.append((int(node_s), float(rank_s)))
    return out
