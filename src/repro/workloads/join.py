"""Reduce-side equi-join — the standard two-input MapReduce pattern.

Two relations R(key, payload) and S(key, payload) are tagged by their
source in the map phase and joined per key in the reduce phase: for each
key present in both, every (r_payload, s_payload) combination is
emitted.  This exercises heterogeneous inputs through one bipartite
exchange — something the paper's model supports naturally (the O
communicator simply contains tasks of both kinds).
"""

from __future__ import annotations

import threading
from typing import Any

import numpy as np

from repro.core import DataMPIJob, Mode, mpidrun
from repro.core.metrics import JobResult
from repro.core.sorter import group_by_key
from repro.hadoop.engine import MiniHadoopCluster
from repro.hadoop.job import HadoopJob, HadoopJobResult

Row = tuple[Any, Any]  # (join key, payload)


def generate_relations(
    num_r: int, num_s: int, key_space: int = 40, seed: int = 23
) -> tuple[list[Row], list[Row]]:
    """Two synthetic relations sharing a key space (some keys unmatched)."""
    rng = np.random.default_rng(seed)
    r_rows = [
        (int(k), f"r{i}") for i, k in enumerate(rng.integers(0, key_space, num_r))
    ]
    s_rows = [
        (int(k), f"s{i}")
        for i, k in enumerate(rng.integers(key_space // 2, key_space + key_space // 2,
                                           num_s))
    ]
    return r_rows, s_rows


def join_reference(r_rows: list[Row], s_rows: list[Row]) -> set[tuple]:
    by_key: dict[Any, list[str]] = {}
    for key, payload in r_rows:
        by_key.setdefault(key, []).append(payload)
    out = set()
    for key, s_payload in s_rows:
        for r_payload in by_key.get(key, []):
            out.add((key, r_payload, s_payload))
    return out


def _join_groups(key, tagged_values, emit):
    r_side = [payload for tag, payload in tagged_values if tag == "R"]
    s_side = [payload for tag, payload in tagged_values if tag == "S"]
    for r_payload in r_side:
        for s_payload in s_side:
            emit(key, (r_payload, s_payload))


def join_datampi(
    r_rows: list[Row],
    s_rows: list[Row],
    o_tasks: int,
    a_tasks: int,
    nprocs: int | None = None,
) -> tuple[JobResult, set[tuple]]:
    """Reduce-side join as one MapReduce-mode job; half the O tasks scan R,
    half scan S (a heterogeneous O communicator)."""
    out: set[tuple] = set()
    lock = threading.Lock()

    def o_fn(ctx):
        # even O ranks stream R, odd ranks stream S
        side, rows = ("R", r_rows) if ctx.rank % 2 == 0 else ("S", s_rows)
        scanners = max(1, ctx.o_size // 2) + (ctx.o_size % 2 if side == "R" else 0)
        position = ctx.rank // 2
        for index in range(position, len(rows), scanners):
            key, payload = rows[index]
            ctx.send(key, (side, payload))

    def a_fn(ctx):
        def emit(key, pair):
            with lock:
                out.add((key, pair[0], pair[1]))

        for key, tagged in group_by_key(ctx.recv_iter()):
            _join_groups(key, tagged, emit)

    job = DataMPIJob("join", o_fn, a_fn, o_tasks, a_tasks, mode=Mode.MAPREDUCE)
    result = mpidrun(job, nprocs=nprocs, raise_on_error=True)
    return result, out


def join_hadoop(
    hadoop: MiniHadoopCluster,
    r_rows: list[Row],
    s_rows: list[Row],
    num_reduces: int,
    workdir: str = "/join",
) -> tuple[HadoopJobResult, set[tuple]]:
    """The Hadoop shape: both relations serialized into one input dir,
    lines tagged by relation."""
    dfs = hadoop.dfs_cluster.client(0)
    r_text = "\n".join(f"R\t{k}\t{p}" for k, p in r_rows) + "\n"
    s_text = "\n".join(f"S\t{k}\t{p}" for k, p in s_rows) + "\n"
    dfs.write_file(f"{workdir}/in/r.txt", r_text.encode())
    dfs.write_file(f"{workdir}/in/s.txt", s_text.encode())

    def mapper(_key, line, emit):
        tag, key, payload = line.split("\t")
        emit(int(key), (tag, payload))

    def reducer(key, tagged, emit):
        _join_groups(key, tagged, emit)

    job = HadoopJob(
        name="join",
        input_path=f"{workdir}/in",
        output_path=f"{workdir}/out",
        mapper=mapper,
        reducer=reducer,
        num_reduces=num_reduces,
    )
    result = hadoop.run_job(job)
    out = set()
    for key_s, value_s in hadoop.read_output(job):
        r_payload, s_payload = value_s.strip("()").replace("'", "").split(", ")
        out.add((int(key_s), r_payload, s_payload))
    return result, out
