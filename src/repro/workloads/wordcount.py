"""WordCount on both engines, with a Counter reference."""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.core import FileSink, mapreduce_job, mpidrun
from repro.core.metrics import JobResult
from repro.hadoop.engine import MiniHadoopCluster
from repro.hadoop.io_formats import compute_splits
from repro.hadoop.job import HadoopJob, HadoopJobResult
from repro.hdfs.client import DFSClient
from repro.hdfs.cluster import MiniDFSCluster

#: a compact vocabulary with a Zipf-like frequency profile
_VOCAB = [f"word{i:03d}" for i in range(120)]


def generate_text(
    num_lines: int, words_per_line: int = 10, seed: int = 7
) -> list[str]:
    """Zipf-distributed word lines (realistic skew for combiners)."""
    rng = np.random.default_rng(seed)
    ranks = rng.zipf(1.3, size=(num_lines, words_per_line))
    ranks = np.minimum(ranks - 1, len(_VOCAB) - 1)
    return [" ".join(_VOCAB[r] for r in row) for row in ranks]


def write_text_to_dfs(dfs: DFSClient, path: str, lines: list[str]) -> None:
    dfs.write_file(path, ("\n".join(lines) + "\n").encode())


def wordcount_reference(lines: list[str]) -> dict[str, int]:
    counter: Counter = Counter()
    for line in lines:
        counter.update(line.split())
    return dict(counter)


def _mapper(_key, line, emit):
    for word in line.split():
        emit(word, 1)


def _reducer(word, counts, emit):
    emit(word, sum(counts))


def _combiner(word, counts):
    return [sum(counts)]


def wordcount_datampi(
    dfs_cluster: MiniDFSCluster,
    input_path: str,
    o_tasks: int,
    a_tasks: int,
    nprocs: int | None = None,
    conf: dict | None = None,
) -> tuple[JobResult, dict[str, int]]:
    """WordCount over HDFS text via the bipartite model; returns counts.

    Output goes through a :class:`~repro.core.output.FileSink`, so the
    counts come back intact on both rank backends (with
    ``mpi.d.launcher=processes`` the A tasks run in worker processes and
    an in-memory collector would stay empty).
    """
    dfs0 = dfs_cluster.client(None)
    splits = compute_splits(dfs0, input_path)
    from repro.hadoop.io_formats import TextInputFormat

    fmt = TextInputFormat()

    def provider(rank: int, size: int):
        dfs = dfs_cluster.client(None)
        for index in range(rank, len(splits), size):
            yield from fmt.read_split(dfs, splits[index])

    sink = FileSink.temporary("wordcount")
    try:
        job = mapreduce_job(
            "wordcount",
            provider,
            _mapper,
            _reducer,
            sink,
            o_tasks=o_tasks,
            a_tasks=a_tasks,
            conf=conf,
            combiner=_combiner,
        )
        result = mpidrun(job, nprocs=nprocs, raise_on_error=True)
        out = sink.merged()
    finally:
        sink.cleanup()
    return result, out


def wordcount_hadoop(
    hadoop: MiniHadoopCluster,
    input_path: str,
    output_path: str,
    num_reduces: int,
) -> tuple[HadoopJobResult, dict[str, int]]:
    job = HadoopJob(
        name="wordcount",
        input_path=input_path,
        output_path=output_path,
        mapper=_mapper,
        reducer=_reducer,
        combiner=_combiner,
        num_reduces=num_reduces,
    )
    result = hadoop.run_job(job)
    counts = {k: int(v) for k, v in hadoop.read_output(job)}
    return result, counts
