"""K-means on both engines (Iteration model), with a NumPy Lloyd reference.

As in Mahout's implementation (the paper's Hadoop baseline), each Hadoop
round is a full MapReduce job broadcasting current centroids; the DataMPI
version keeps points in process-local state and only exchanges partial
cluster sums — the iteration-mode advantage.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from typing import Any

import numpy as np

from repro.core import DataMPIJob, Mode, mpidrun
from repro.core.metrics import JobResult
from repro.hadoop.engine import MiniHadoopCluster
from repro.hadoop.job import HadoopJob


def generate_points(
    num_points: int, num_clusters: int, dims: int = 2, seed: int = 5
) -> np.ndarray:
    """Gaussian blobs around ``num_clusters`` well-separated centers."""
    rng = np.random.default_rng(seed)
    centers = rng.uniform(-10, 10, size=(num_clusters, dims))
    assignments = rng.integers(0, num_clusters, size=num_points)
    return centers[assignments] + rng.normal(0, 0.5, size=(num_points, dims))


def initial_centroids(points: np.ndarray, k: int) -> np.ndarray:
    """Deterministic init: the first k points (all engines share it)."""
    return points[:k].copy()


def _assign(points: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """Vectorized nearest-centroid assignment."""
    distances = np.linalg.norm(points[:, None, :] - centroids[None, :, :], axis=2)
    return distances.argmin(axis=1)


def kmeans_reference(
    points: np.ndarray, k: int, rounds: int
) -> np.ndarray:
    """Plain Lloyd iterations from the shared deterministic init."""
    centroids = initial_centroids(points, k)
    for _ in range(rounds):
        labels = _assign(points, centroids)
        for cluster in range(k):
            members = points[labels == cluster]
            if len(members):
                centroids[cluster] = members.mean(axis=0)
    return centroids


# -- DataMPI Iteration mode -----------------------------------------------------------


def kmeans_datampi(
    points: np.ndarray,
    k: int,
    rounds: int,
    o_tasks: int,
    a_tasks: int,
    nprocs: int | None = None,
    conf: dict | None = None,
) -> tuple[JobResult, np.ndarray]:
    """One Iteration-mode job; returns (result, final centroids).

    Runs ``rounds + 1`` bipartite rounds: rounds 0..rounds-1 perform the
    Lloyd updates (partial sums forward, centroids backward); the final
    extra round only collects the converged centroid set from O-side
    state — which is where clusters that went *empty* keep their carried-
    forward centroid, exactly like the reference implementation.
    """
    init = initial_centroids(points, k)
    # the collection round publishes through a file: with
    # ``mpi.d.launcher=processes`` the O task runs in a worker process,
    # where a closure write to driver memory would be lost
    final_dir = tempfile.mkdtemp(prefix="datampi-kmeans-")
    final_path = os.path.join(final_dir, "centroids.npy")

    def partitioner(key: Any, value: Any, num: int) -> int:
        # fwd keys: cluster ids (int); bwd keys: (o_rank, cluster) tuples
        if isinstance(key, tuple):
            return key[0] % num
        return key % num

    def o_fn(ctx):
        if ctx.round == 0:
            centroids = init.copy()
        else:
            centroids = ctx.state[("centroids", ctx.rank)].copy()
            for (_o, cluster), centroid in ctx.recv_iter():
                centroids[cluster] = np.asarray(centroid)
        ctx.state[("centroids", ctx.rank)] = centroids
        if ctx.round == rounds:  # collection round: publish, send nothing
            if ctx.rank == 0:
                np.save(final_path, centroids)
            return
        my_points = points[ctx.rank :: ctx.o_size]
        labels = _assign(my_points, centroids)
        for cluster in range(k):
            members = my_points[labels == cluster]
            if len(members):
                # pre-aggregated partial sums: one message per cluster
                ctx.send(cluster, (len(members), tuple(members.sum(axis=0))))

    def a_fn(ctx):
        counts: dict[int, int] = {}
        sums: dict[int, np.ndarray] = {}
        for cluster, (count, partial) in ctx.recv_iter():
            counts[cluster] = counts.get(cluster, 0) + count
            sums[cluster] = sums.get(cluster, 0) + np.asarray(partial)
        centroids = {c: sums[c] / counts[c] for c in counts}
        # broadcast each new centroid to every O task (clusters with no
        # members send nothing: their centroid carries forward in O state)
        for o_rank in range(ctx.o_size):
            for cluster, centroid in centroids.items():
                ctx.send((o_rank, cluster), tuple(centroid))

    job = DataMPIJob(
        name="kmeans",
        o_fn=o_fn,
        a_fn=a_fn,
        o_tasks=o_tasks,
        a_tasks=a_tasks,
        mode=Mode.ITERATION,
        rounds=rounds + 1,
        partitioner=partitioner,
        conf=dict(conf or {}),
    )
    try:
        result = mpidrun(job, nprocs=nprocs, raise_on_error=True)
        final = np.load(final_path)
    finally:
        shutil.rmtree(final_dir, ignore_errors=True)
    return result, final


# -- Hadoop: one MapReduce job per round -------------------------------------------------


def kmeans_hadoop(
    hadoop: MiniHadoopCluster,
    points: np.ndarray,
    k: int,
    rounds: int,
    num_reduces: int,
    workdir: str = "/kmeans",
) -> tuple[list[Any], np.ndarray]:
    """``rounds`` chained jobs; points live in HDFS, centroids rebroadcast."""
    dfs = hadoop.dfs_cluster.client(0)
    lines = [" ".join(f"{x:.17g}" for x in p) for p in points]
    dfs.write_file(f"{workdir}/points/data", ("\n".join(lines) + "\n").encode())
    centroids = initial_centroids(points, k)
    results = []
    for round_no in range(rounds):
        frozen = centroids.copy()

        def mapper(_key, line, emit, frozen=frozen):
            point = np.array([float(x) for x in line.split()])
            cluster = int(_assign(point[None, :], frozen)[0])
            emit(cluster, (1, tuple(point)))

        def combiner(cluster, partials):
            count = sum(c for c, _ in partials)
            total = np.sum([np.asarray(p) for _, p in partials], axis=0)
            return [(count, tuple(total))]

        def reducer(cluster, partials, emit):
            count = sum(c for c, _ in partials)
            total = np.sum([np.asarray(p) for _, p in partials], axis=0)
            centroid = total / count
            emit(cluster, " ".join(f"{x:.17g}" for x in centroid))

        job = HadoopJob(
            name=f"kmeans-{round_no}",
            input_path=f"{workdir}/points",
            output_path=f"{workdir}/round{round_no}",
            mapper=mapper,
            reducer=reducer,
            combiner=combiner,
            num_reduces=num_reduces,
        )
        result = hadoop.run_job(job)
        results.append(result)
        if not result.success:
            return results, centroids
        for key, value in hadoop.read_output(job):
            centroids[int(key)] = np.array([float(x) for x in value.split()])
    return results, centroids
