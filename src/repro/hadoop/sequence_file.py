"""SequenceFile: Hadoop's binary key-value container format.

Real Hadoop pipelines (Mahout's K-means, chained PageRank jobs) pass
intermediate datasets between jobs as SequenceFiles rather than text.
This is a faithful miniature: a magic header carrying the serializer
name, followed by length-prefixed records, with periodic sync markers
that allow a reader to resynchronize from an arbitrary block boundary —
the property that makes SequenceFiles splittable.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.common.errors import SerializationError
from repro.hdfs.client import DFSClient
from repro.serde.io import DataInput, DataOutput
from repro.serde.serialization import Serializer, get_serializer

#: file magic (mini-SEQ version 1)
MAGIC = b"MSEQ1"
#: 16-byte pseudo-random sync marker, fixed per format version
SYNC_MARKER = bytes(
    [0xA3, 0x5C, 0x91, 0x0F, 0x4E, 0xB2, 0x77, 0xD8,
     0x19, 0x60, 0xC4, 0x3B, 0x8A, 0xF5, 0x2D, 0xE6]
)
#: a sync marker is emitted at least every this many bytes
SYNC_INTERVAL = 16 * 1024


class SequenceFileWriter:
    """Streams records into an HDFS file."""

    def __init__(
        self, dfs: DFSClient, path: str, serializer: str = "writable",
        overwrite: bool = False,
    ) -> None:
        self._serializer: Serializer = get_serializer(serializer)
        self._stream = dfs.create(path, overwrite=overwrite)
        header = DataOutput()
        header.write_bytes(MAGIC)
        header.write_utf(serializer)
        header.write_bytes(SYNC_MARKER)
        self._stream.write(header.getvalue())
        self._since_sync = 0
        self.records_written = 0
        self._closed = False

    def append(self, key: Any, value: Any) -> None:
        if self._closed:
            raise SerializationError("sequence file writer is closed")
        body = DataOutput()
        self._serializer.serialize_kv(key, value, body)
        record = DataOutput()
        record.write_vint(len(body))
        record.write_bytes(body.getvalue())
        payload = record.getvalue()
        if self._since_sync + len(payload) > SYNC_INTERVAL:
            self._stream.write(SYNC_MARKER)
            self._since_sync = 0
        self._stream.write(payload)
        self._since_sync += len(payload)
        self.records_written += 1

    def close(self) -> None:
        if not self._closed:
            self._stream.close()
            self._closed = True

    def __enter__(self) -> "SequenceFileWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SequenceFileReader:
    """Reads records; can start mid-file by seeking the next sync marker."""

    def __init__(self, dfs: DFSClient, path: str) -> None:
        self._data = dfs.read_file(path)
        src = DataInput(self._data)
        if src.read_bytes(len(MAGIC)) != MAGIC:
            raise SerializationError(f"{path}: not a mini-SequenceFile")
        serializer_name = src.read_utf()
        if src.read_bytes(len(SYNC_MARKER)) != SYNC_MARKER:
            raise SerializationError(f"{path}: corrupt header")
        self._serializer = get_serializer(serializer_name)
        self._body_start = src.position

    def __iter__(self) -> Iterator[tuple[Any, Any]]:
        return self.records_from(self._body_start)

    def records_from(self, offset: int) -> Iterator[tuple[Any, Any]]:
        """Records starting at the first record boundary at/after ``offset``.

        If ``offset`` is not a known boundary, scan forward to the next
        sync marker (the splittability mechanism).
        """
        if offset != self._body_start:
            found = self._data.find(SYNC_MARKER, offset)
            if found < 0:
                return
            offset = found + len(SYNC_MARKER)
        src = DataInput(self._data, pos=offset)
        while not src.at_end():
            if self._peek_sync(src):
                src.read_bytes(len(SYNC_MARKER))
                continue
            length = src.read_vint()
            body = DataInput(src.read_bytes(length))
            yield self._serializer.deserialize_kv(body)

    def _peek_sync(self, src: DataInput) -> bool:
        pos = src.position
        return self._data[pos : pos + len(SYNC_MARKER)] == SYNC_MARKER

    def split_records(self, start: int, end: int) -> Iterator[tuple[Any, Any]]:
        """Records whose sync-resynchronized start lies in [start, end) —
        the per-split reader contract: no record read twice across splits.
        """
        if start <= self._body_start:
            begin = self._body_start
        else:
            found = self._data.find(SYNC_MARKER, start)
            if found < 0 or found >= end:
                return
            begin = found + len(SYNC_MARKER)
        src = DataInput(self._data, pos=begin)
        while not src.at_end():
            if self._peek_sync(src):
                marker_at = src.position
                if marker_at >= end:
                    return  # the next split picks up from this marker
                src.read_bytes(len(SYNC_MARKER))
                continue
            length = src.read_vint()
            body = DataInput(src.read_bytes(length))
            yield self._serializer.deserialize_kv(body)


def write_sequence_file(
    dfs: DFSClient, path: str, records, serializer: str = "writable",
    overwrite: bool = False,
) -> int:
    """Convenience: write an iterable of (key, value); returns the count."""
    with SequenceFileWriter(dfs, path, serializer, overwrite=overwrite) as writer:
        for key, value in records:
            writer.append(key, value)
        return writer.records_written


def read_sequence_file(dfs: DFSClient, path: str) -> list[tuple[Any, Any]]:
    return list(SequenceFileReader(dfs, path))
