"""Mini-Hadoop: the MapReduce baseline the paper compares against.

A functional reproduction of the Hadoop 1.x execution architecture at
the granularity the paper discusses (§IV-B, Figure 5):

* **JobTracker** — splits input by HDFS block, schedules map tasks with
  data-locality preference, launches reduces only after maps complete;
* **MapTask** — in-memory sort buffer (``io.sort.mb``), sorted+partitioned
  spills, final merge, output registered with the host's shuffle server;
* **proxy-based two-phase shuffle** — reduce tasks *pull* map output
  segments from per-TaskTracker HTTP-style servers, then merge;
* **ReduceTask** — copy, merge, reduce, write ``part-r-NNNNN`` to HDFS.

This is the "two-phase and proxy-based data movement approach" whose
lack of reduce-side locality and delayed shuffle DataMPI's O-side
pipeline removes.
"""

from repro.hadoop.engine import MiniHadoopCluster
from repro.hadoop.job import HadoopJob, HadoopJobResult
from repro.hadoop.io_formats import (
    FixedLengthRecordFormat,
    KeyValueTextOutputFormat,
    TextInputFormat,
)

__all__ = [
    "MiniHadoopCluster",
    "HadoopJob",
    "HadoopJobResult",
    "TextInputFormat",
    "FixedLengthRecordFormat",
    "KeyValueTextOutputFormat",
]
