"""Hadoop job definition and result types."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from repro.common.errors import DataMPIError
from repro.core.partition import Partitioner, hash_partitioner
from repro.hadoop.io_formats import KeyValueTextOutputFormat, TextInputFormat
from repro.serde.comparators import Compare

Mapper = Callable[[Any, Any, Callable[[Any, Any], None]], None]
Reducer = Callable[[Any, list[Any], Callable[[Any, Any], None]], None]
Combiner = Callable[[Any, list[Any]], Iterable[Any]]


@dataclass
class HadoopJob:
    """One MapReduce job over mini-HDFS paths."""

    name: str
    input_path: str
    output_path: str
    mapper: Mapper
    reducer: Reducer
    num_reduces: int
    combiner: Combiner | None = None
    partitioner: Partitioner = hash_partitioner
    comparator: Compare | None = None
    input_format: Any = field(default_factory=TextInputFormat)
    output_format: Any = field(default_factory=KeyValueTextOutputFormat)
    #: map-side sort buffer (io.sort.mb analogue), bytes
    sort_buffer_bytes: int = 1 << 20

    def validate(self) -> None:
        if self.num_reduces < 1:
            raise DataMPIError("num_reduces must be >= 1")
        if self.sort_buffer_bytes < 1024:
            raise DataMPIError("sort buffer unreasonably small")


@dataclass
class PhaseTimeline:
    """Start/end stamps per task, for progress plots (Figure 9 analogue)."""

    starts: dict[str, float] = field(default_factory=dict)
    ends: dict[str, float] = field(default_factory=dict)

    def record_start(self, task: str, t: float) -> None:
        self.starts[task] = t

    def record_end(self, task: str, t: float) -> None:
        self.ends[task] = t

    def duration(self) -> float:
        if not self.ends:
            return 0.0
        return max(self.ends.values()) - min(self.starts.values())


@dataclass
class HadoopCounters:
    """The classic job counters."""

    map_input_records: int = 0
    map_output_records: int = 0
    map_output_bytes: int = 0
    combine_output_records: int = 0
    spilled_records: int = 0
    spill_files: int = 0
    reduce_shuffle_bytes: int = 0
    shuffle_fetches: int = 0
    reduce_input_records: int = 0
    reduce_output_records: int = 0
    data_local_maps: int = 0
    rack_remote_maps: int = 0

    @property
    def map_locality(self) -> float:
        total = self.data_local_maps + self.rack_remote_maps
        return self.data_local_maps / total if total else 1.0


@dataclass
class HadoopJobResult:
    name: str
    success: bool
    counters: HadoopCounters = field(default_factory=HadoopCounters)
    map_timeline: PhaseTimeline = field(default_factory=PhaseTimeline)
    reduce_timeline: PhaseTimeline = field(default_factory=PhaseTimeline)
    output_files: list[str] = field(default_factory=list)
    error: str = ""
