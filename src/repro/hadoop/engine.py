"""JobTracker/TaskTracker execution engine.

The :class:`MiniHadoopCluster` binds one TaskTracker (with map/reduce
slots and a shuffle server) to every HDFS DataNode.  ``run_job``:

1. computes input splits (one per block),
2. schedules map tasks **data-local first** onto free map slots,
3. waits for all maps (the reducers' copy phase cannot finish earlier —
   the two-phase proxy shuffle the paper critiques),
4. schedules reduce tasks round-robin (no data locality is *possible*:
   "the outputs of maps are distributed over the whole cluster"),
5. returns counters, timelines and HDFS output paths.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any

from repro.common.errors import JobFailedError
from repro.hadoop.io_formats import compute_splits_for_dir
from repro.hadoop.job import HadoopCounters, HadoopJob, HadoopJobResult, PhaseTimeline
from repro.hadoop.shuffle_http import ShuffleDirectory, ShuffleServer
from repro.hadoop.tasks import now, run_map_task, run_reduce_task
from repro.hdfs.cluster import MiniDFSCluster


class TaskTracker:
    """Slots + shuffle server of one node."""

    def __init__(self, node_id: int, map_slots: int, reduce_slots: int) -> None:
        self.node_id = node_id
        self.map_slots = map_slots
        self.reduce_slots = reduce_slots
        self.shuffle_server = ShuffleServer(node_id)


class MiniHadoopCluster:
    """One TaskTracker per DataNode of the provided mini-HDFS."""

    def __init__(
        self,
        dfs_cluster: MiniDFSCluster,
        map_slots_per_node: int = 2,
        reduce_slots_per_node: int = 2,
    ) -> None:
        self.dfs_cluster = dfs_cluster
        self.trackers = [
            TaskTracker(n, map_slots_per_node, reduce_slots_per_node)
            for n in range(dfs_cluster.num_nodes)
        ]

    # -- scheduling helpers ------------------------------------------------------
    def _assign_maps(self, splits: list) -> list[tuple[int, int]]:
        """(map_id, node) assignments, preferring replica-local nodes.

        Greedy JobTracker heuristic: walk nodes' free slots, give each a
        local split when one exists, else the oldest remaining split.
        """
        pending = deque(range(len(splits)))
        slots: list[int] = []
        for tracker in self.trackers:
            slots.extend([tracker.node_id] * tracker.map_slots)
        assignments: list[tuple[int, int]] = []
        slot_cycle = deque(slots)
        while pending:
            node = slot_cycle[0]
            slot_cycle.rotate(-1)
            local = next(
                (m for m in pending if node in splits[m].hosts), None
            )
            chosen = local if local is not None else pending[0]
            pending.remove(chosen)
            assignments.append((chosen, node))
        return assignments

    def _run_wave(self, work: list[tuple[Any, ...]], slots: int) -> None:
        """Run callables on at most ``slots`` concurrent threads."""
        errors: list[BaseException] = []
        semaphore = threading.Semaphore(slots)

        def runner(fn, args):
            try:
                fn(*args)
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)
            finally:
                semaphore.release()

        threads = []
        for fn, *args in work:
            semaphore.acquire()
            if errors:
                semaphore.release()
                break
            t = threading.Thread(target=runner, args=(fn, args), daemon=True)
            t.start()
            threads.append(t)
        for t in threads:
            t.join()
        if errors:
            raise JobFailedError(str(errors[0])) from errors[0]

    # -- the job driver ------------------------------------------------------------
    def run_job(self, job: HadoopJob) -> HadoopJobResult:
        job.validate()
        counters = HadoopCounters()
        counters_lock = threading.Lock()
        map_timeline = PhaseTimeline()
        reduce_timeline = PhaseTimeline()
        dfs0 = self.dfs_cluster.client(None)
        splits = compute_splits_for_dir(dfs0, job.input_path)
        if not splits:
            return HadoopJobResult(
                job.name, False, error=f"no input under {job.input_path}"
            )
        directory = ShuffleDirectory([t.shuffle_server for t in self.trackers])

        # ---- map phase ------------------------------------------------------
        assignments = self._assign_maps(splits)

        def map_wrapper(map_id: int, node: int) -> None:
            map_timeline.record_start(f"m{map_id}", now())
            tracker = self.trackers[node]
            dfs = self.dfs_cluster.client(node)
            run_map_task(
                job, map_id, splits[map_id], dfs, tracker.shuffle_server,
                counters, counters_lock,
            )
            directory.announce_completion(map_id, node)
            map_timeline.record_end(f"m{map_id}", now())

        total_map_slots = sum(t.map_slots for t in self.trackers)
        try:
            self._run_wave(
                [(map_wrapper, m, node) for m, node in assignments],
                total_map_slots,
            )

            # ---- reduce phase ------------------------------------------------
            def reduce_wrapper(reduce_id: int, node: int) -> None:
                reduce_timeline.record_start(f"r{reduce_id}", now())
                dfs = self.dfs_cluster.client(node)
                run_reduce_task(
                    job, reduce_id, len(splits), directory, dfs,
                    counters, counters_lock,
                )
                reduce_timeline.record_end(f"r{reduce_id}", now())

            total_reduce_slots = sum(t.reduce_slots for t in self.trackers)
            reduce_work = [
                (reduce_wrapper, r, r % len(self.trackers))
                for r in range(job.num_reduces)
            ]
            self._run_wave(reduce_work, total_reduce_slots)
        except JobFailedError as exc:
            return HadoopJobResult(job.name, False, counters, error=str(exc))

        output_files = dfs0.listdir(job.output_path)
        return HadoopJobResult(
            job.name,
            True,
            counters=counters,
            map_timeline=map_timeline,
            reduce_timeline=reduce_timeline,
            output_files=output_files,
        )

    def read_output(self, job: HadoopJob) -> list[tuple[str, str]]:
        """Parse every part file of a text-output job."""
        dfs = self.dfs_cluster.client(None)
        pairs: list[tuple[str, str]] = []
        for path in dfs.listdir(job.output_path):
            pairs.extend(job.output_format.parse(dfs.read_file(path)))
        return pairs
