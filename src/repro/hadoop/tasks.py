"""Map and reduce task execution."""

from __future__ import annotations

import time
from typing import Any

from repro.core.sorter import group_by_key, merge_runs
from repro.hadoop.io_formats import InputSplit
from repro.hadoop.job import HadoopCounters, HadoopJob
from repro.hadoop.map_output import MapOutputBuffer
from repro.hadoop.shuffle_http import ShuffleDirectory, ShuffleServer
from repro.hdfs.client import DFSClient
from repro.serde.comparators import default_compare


def run_map_task(
    job: HadoopJob,
    map_id: int,
    split: InputSplit,
    dfs: DFSClient,
    server: ShuffleServer,
    counters: HadoopCounters,
    counters_lock: Any,
) -> None:
    """Execute one map task on the host owning ``dfs``/``server``."""
    buffer = MapOutputBuffer(
        num_partitions=job.num_reduces,
        partitioner=job.partitioner,
        sort_buffer_bytes=job.sort_buffer_bytes,
        cmp=job.comparator,
        combiner=job.combiner,
    )
    input_records = 0
    for key, value in job.input_format.read_split(dfs, split):
        input_records += 1
        job.mapper(key, value, buffer.collect)
    outputs = buffer.finish()
    # the map writes its output "to local disk" = this host's shuffle server
    server.register_map_output(map_id, outputs)
    with counters_lock:
        counters.map_input_records += input_records
        counters.map_output_records += buffer.records_collected
        counters.spilled_records += buffer.spilled_records
        counters.spill_files += buffer.num_spills
        counters.combine_output_records += buffer.combined_records
        if dfs.node_id is not None and dfs.node_id in split.hosts:
            counters.data_local_maps += 1
        else:
            counters.rack_remote_maps += 1


def run_reduce_task(
    job: HadoopJob,
    reduce_id: int,
    num_maps: int,
    directory: ShuffleDirectory,
    dfs: DFSClient,
    counters: HadoopCounters,
    counters_lock: Any,
) -> str:
    """Execute one reduce: copy (HTTP pulls) -> merge -> reduce -> HDFS.

    Returns the output file path written.
    """
    from repro.common.records import kv_bytes

    # -- copy phase: pull this partition's segment from every map ------------
    runs = []
    shuffle_bytes = 0
    fetches = 0
    for map_id in range(num_maps):
        run, _host = directory.fetch(map_id, reduce_id)
        fetches += 1
        shuffle_bytes += sum(kv_bytes(k, v) for k, v in run)
        if run:
            runs.append(run)
    # -- merge phase ------------------------------------------------------------
    cmp = job.comparator or default_compare
    merged = merge_runs(runs, cmp)
    # -- reduce phase -------------------------------------------------------------
    output_pairs: list[tuple[Any, Any]] = []

    def emit(key: Any, value: Any) -> None:
        output_pairs.append((key, value))

    reduce_input = 0
    for key, values in group_by_key(merged):
        reduce_input += len(values)
        job.reducer(key, values, emit)
    out_path = f"{job.output_path}/part-r-{reduce_id:05d}"
    dfs.write_file(out_path, job.output_format.serialize(output_pairs))
    with counters_lock:
        counters.reduce_shuffle_bytes += shuffle_bytes
        counters.shuffle_fetches += fetches
        counters.reduce_input_records += reduce_input
        counters.reduce_output_records += len(output_pairs)
    return out_path


def now() -> float:
    return time.perf_counter()
