"""Map-side output buffer: the io.sort.mb spill machinery.

Hadoop's map writes into a circular in-memory buffer; when it fills, the
content is sorted, partitioned, optionally combined and *spilled to
local disk*; at task end the spills are merged into one partitioned map
output file.  The paper contrasts this write-to-disk-then-serve design
("each map task writes the intermediate data to local disk") with
DataMPI's in-memory push shuffle.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro.common.records import kv_bytes
from repro.core.partition import Partitioner, validate_destination
from repro.core.sorter import combine_run, merge_runs, sort_block
from repro.serde.comparators import Compare, default_compare

KV = tuple[Any, Any]
Combiner = Callable[[Any, list[Any]], Iterable[Any]]


class MapOutputBuffer:
    """Collects map output, spills sorted partitioned runs past the budget."""

    def __init__(
        self,
        num_partitions: int,
        partitioner: Partitioner,
        sort_buffer_bytes: int,
        cmp: Compare | None = None,
        combiner: Combiner | None = None,
    ) -> None:
        self.num_partitions = num_partitions
        self.partitioner = partitioner
        self.sort_buffer_bytes = sort_buffer_bytes
        self.cmp = cmp or default_compare
        self.combiner = combiner
        self._records: list[tuple[int, Any, Any]] = []  # (partition, k, v)
        self._bytes = 0
        #: completed spills: each is partition -> sorted run
        self.spills: list[dict[int, list[KV]]] = []
        self.records_collected = 0
        self.spilled_records = 0
        self.combined_records = 0

    def collect(self, key: Any, value: Any) -> None:
        dest = validate_destination(
            self.partitioner(key, value, self.num_partitions), self.num_partitions
        )
        self._records.append((dest, key, value))
        self._bytes += kv_bytes(key, value)
        self.records_collected += 1
        if self._bytes >= self.sort_buffer_bytes:
            self.spill()

    def spill(self) -> None:
        """Sort+partition (+combine) the buffer into one spill."""
        if not self._records:
            return
        by_partition: dict[int, list[KV]] = {}
        for dest, key, value in self._records:
            by_partition.setdefault(dest, []).append((key, value))
        spill: dict[int, list[KV]] = {}
        for dest, records in by_partition.items():
            run = sort_block(records, self.cmp)
            if self.combiner is not None:
                before = len(run)
                run = combine_run(run, self.combiner)
                self.combined_records += before - len(run)
            spill[dest] = run
            self.spilled_records += len(run)
        self.spills.append(spill)
        self._records.clear()
        self._bytes = 0

    def finish(self) -> dict[int, list[KV]]:
        """Final merge of all spills into one map output (per partition)."""
        self.spill()
        merged: dict[int, list[KV]] = {}
        for partition in range(self.num_partitions):
            runs = [s[partition] for s in self.spills if partition in s]
            if not runs:
                continue
            if len(runs) == 1:
                merged[partition] = runs[0]
            else:
                run = list(merge_runs(runs, self.cmp))
                if self.combiner is not None:
                    run = combine_run(run, self.combiner)
                merged[partition] = run
        return merged

    @property
    def num_spills(self) -> int:
        return len(self.spills)
