"""The TaskTracker shuffle server: Hadoop's HTTP proxy for map output.

"Each reduce task downloads the data from different maps by the proxies,
which are the built-in HTTP servers in TaskTrackers" (§IV-B).  The mini
version keeps the architecture — map output is *registered* with the
server on the map's host and *pulled* by reducers — while replacing
sockets with direct calls that account the transferred bytes, so the
proxy-based data movement (and its lack of reduce-side locality) is
observable in the counters.
"""

from __future__ import annotations

import threading
from typing import Any

from repro.common.errors import DataMPIError
from repro.common.records import kv_bytes

KV = tuple[Any, Any]


class ShuffleServer:
    """Per-TaskTracker map-output store with HTTP-pull semantics."""

    def __init__(self, host_id: int) -> None:
        self.host_id = host_id
        self._lock = threading.Lock()
        #: (map_id, partition) -> sorted run
        self._segments: dict[tuple[int, int], list[KV]] = {}
        self.bytes_served = 0
        self.requests_served = 0

    def register_map_output(self, map_id: int, outputs: dict[int, list[KV]]) -> None:
        """Called by a finished map task on this host."""
        with self._lock:
            for partition, run in outputs.items():
                self._segments[(map_id, partition)] = run

    def fetch(self, map_id: int, partition: int) -> list[KV]:
        """One reducer HTTP GET: returns the segment (possibly empty)."""
        with self._lock:
            run = self._segments.get((map_id, partition), [])
            self.requests_served += 1
            self.bytes_served += sum(kv_bytes(k, v) for k, v in run)
            return run

    def has_map(self, map_id: int) -> bool:
        with self._lock:
            return any(m == map_id for m, _ in self._segments)


class ShuffleDirectory:
    """Job-wide registry: which host served each map (completion events)."""

    def __init__(self, servers: list[ShuffleServer]) -> None:
        self.servers = servers
        self._lock = threading.Lock()
        self._map_hosts: dict[int, int] = {}

    def announce_completion(self, map_id: int, host_id: int) -> None:
        """JobTracker records the map-completion event reducers poll for."""
        with self._lock:
            self._map_hosts[map_id] = host_id

    def host_of(self, map_id: int) -> int:
        with self._lock:
            try:
                return self._map_hosts[map_id]
            except KeyError:
                raise DataMPIError(f"map {map_id} has not completed") from None

    def completed_maps(self) -> list[int]:
        with self._lock:
            return sorted(self._map_hosts)

    def fetch(self, map_id: int, partition: int) -> tuple[list[KV], int]:
        """Reducer-side pull: resolve the host, fetch; returns (run, host)."""
        host = self.host_of(map_id)
        return self.servers[host].fetch(map_id, partition), host
