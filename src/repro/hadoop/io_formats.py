"""Input splits and record formats.

An :class:`InputSplit` is one HDFS block plus its replica locations —
the unit of map-task scheduling and the source of data locality.  Record
formats parse split bytes into (key, value) records:

* :class:`TextInputFormat` — newline records, ``(byte offset, line)``,
  like Hadoop's default (WordCount input);
* :class:`FixedLengthRecordFormat` — fixed-size binary records split
  into key/value byte fields (TeraSort's 10+90-byte records);
* :class:`KeyValueTextOutputFormat` — ``key<TAB>value`` output lines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

from repro.common.errors import DataMPIError
from repro.hdfs.client import DFSClient


@dataclass(frozen=True)
class InputSplit:
    """One schedulable chunk of input."""

    path: str
    block_index: int
    length: int
    hosts: tuple[int, ...]  # datanode ids holding a replica


def compute_splits(dfs: DFSClient, path: str) -> list[InputSplit]:
    """One split per HDFS block, like FileInputFormat with split = block."""
    return [
        InputSplit(path, i, block.size, block.locations)
        for i, block in enumerate(dfs.namenode.get_block_locations(path))
    ]


def compute_splits_for_dir(dfs: DFSClient, prefix: str) -> list[InputSplit]:
    """Splits for every file under a directory prefix."""
    splits: list[InputSplit] = []
    for path in dfs.listdir(prefix):
        splits.extend(compute_splits(dfs, path))
    return splits


class TextInputFormat:
    """Newline-delimited text; records are (offset-within-split, line).

    Block boundaries cut lines arbitrarily, so this implements Hadoop's
    ``LineRecordReader`` contract: a split that is not the first skips
    everything up to and including the first newline (that partial line
    belongs to the previous split), and every split reads *past* its end
    into following blocks to finish its last line.
    """

    name = "text"

    def read_records(self, data: bytes) -> Iterator[tuple[Any, Any]]:
        offset = 0
        for raw_line in data.split(b"\n"):
            if raw_line:
                yield offset, raw_line.decode("utf-8", errors="replace")
            offset += len(raw_line) + 1

    def read_split(self, dfs: DFSClient, split: InputSplit) -> Iterator[tuple[Any, Any]]:
        blocks = dfs.namenode.get_block_locations(split.path)
        data = dfs.read_blocks(split.path, [split.block_index])
        if split.block_index > 0:
            # Hadoop's LineRecordReader trick: examine the byte just before
            # the split.  If it is a newline the split starts on a line
            # boundary and nothing is skipped; otherwise the head of this
            # split is the tail of the previous split's line — drop it.
            prev = dfs.read_blocks(split.path, [split.block_index - 1])
            if not prev.endswith(b"\n"):
                newline = data.find(b"\n")
                if newline < 0:
                    return  # whole block is the middle of one huge line
                data = data[newline + 1 :]
                if not data:
                    # the skipped line ended exactly at this split's end:
                    # no line *starts* here, so nothing belongs to it
                    return
        if not data.endswith(b"\n"):
            # stitch the tail line from following blocks
            for nxt in range(split.block_index + 1, len(blocks)):
                extra = dfs.read_blocks(split.path, [nxt])
                newline = extra.find(b"\n")
                if newline >= 0:
                    data += extra[: newline + 1]
                    break
                data += extra
        yield from self.read_records(data)


class FixedLengthRecordFormat:
    """Fixed-width binary records: ``key_len`` key bytes + value bytes."""

    name = "fixed"

    def __init__(self, record_len: int = 100, key_len: int = 10) -> None:
        if not 0 < key_len < record_len:
            raise DataMPIError("key_len must be inside the record")
        self.record_len = record_len
        self.key_len = key_len

    def read_records(self, data: bytes) -> Iterator[tuple[bytes, bytes]]:
        if len(data) % self.record_len:
            raise DataMPIError(
                f"split of {len(data)} bytes is not a multiple of "
                f"{self.record_len}-byte records"
            )
        for pos in range(0, len(data), self.record_len):
            record = data[pos : pos + self.record_len]
            yield record[: self.key_len], record[self.key_len :]

    def read_split(self, dfs: DFSClient, split: InputSplit) -> Iterator[tuple[bytes, bytes]]:
        """Record-aligned blocks only (generators must size blocks to a
        multiple of ``record_len``; TeraGen does)."""
        yield from self.read_records(dfs.read_blocks(split.path, [split.block_index]))


class KeyValueTextOutputFormat:
    """``key<TAB>value`` lines, one file per reduce task."""

    name = "kvtext"

    def serialize(self, pairs: list[tuple[Any, Any]]) -> bytes:
        return "".join(f"{k}\t{v}\n" for k, v in pairs).encode("utf-8")

    def parse(self, data: bytes) -> list[tuple[str, str]]:
        out = []
        for line in data.decode("utf-8").splitlines():
            key, _, value = line.partition("\t")
            out.append((key, value))
        return out


class BytesConcatOutputFormat:
    """Raw concatenation of key+value bytes (TeraSort's sorted output)."""

    name = "bytes"

    def serialize(self, pairs: list[tuple[bytes, bytes]]) -> bytes:
        return b"".join(k + v for k, v in pairs)

    def parse(self, data: bytes, record_len: int = 100) -> list[bytes]:
        return [data[i : i + record_len] for i in range(0, len(data), record_len)]
