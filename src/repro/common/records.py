"""Key-value record primitives.

Key-value pairs are "the core data representation structure" of Hadoop-like
systems (paper §II-B); every shuffle buffer, checkpoint file and RPC payload
in this library ultimately carries them.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, NamedTuple


class KeyValue(NamedTuple):
    """An immutable (key, value) pair — "an intact business record" (§IV-E)."""

    key: Any
    value: Any

    def __repr__(self) -> str:  # keep shuffle debug output short
        return f"KV({self.key!r}, {self.value!r})"


def kv_bytes(key: Any, value: Any) -> int:
    """Approximate the in-memory payload size of a key-value pair.

    Buffer thresholds (SPL flush, spill triggers, checkpoint rounds) need a
    cheap, deterministic size estimate that does not serialize the pair.
    ``bytes``/``str`` report their real length; other objects use a small
    fixed cost plus recursion over tuples/lists, which is adequate for
    threshold accounting.
    """
    return _size_of(key) + _size_of(value)


def kv_run_bytes(records: Iterable[tuple[Any, Any]]) -> int:
    """Single-pass total payload estimate of a whole run of records.

    Buffer layers that need the size of a sealed block or run should call
    this once and carry the result alongside the records — never re-scan.
    """
    return sum(kv_bytes(key, value) for key, value in records)


def _size_of(obj: Any) -> int:
    if obj is None:
        return 1
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj) + 4
    if isinstance(obj, str):
        return len(obj) + 4
    if isinstance(obj, bool):
        return 1
    if isinstance(obj, int):
        return 8
    if isinstance(obj, float):
        return 8
    if isinstance(obj, (tuple, list)):
        return 4 + sum(_size_of(item) for item in obj)
    if hasattr(obj, "serialized_size"):
        return int(obj.serialized_size())
    return 16


def iter_kv(pairs: Iterable[tuple[Any, Any]]) -> Iterator[KeyValue]:
    """Normalize an iterable of 2-tuples into :class:`KeyValue` records."""
    for key, value in pairs:
        yield KeyValue(key, value)
