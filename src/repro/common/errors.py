"""Exception hierarchy for the whole reproduction.

Every subsystem raises a subclass of :class:`ReproError` so callers can
catch at the granularity they care about.  ``MPI_D_Exception`` is kept as
an alias of :class:`DataMPIError` to mirror the paper's Listing 1.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class FailureRecord:
    """Structured description of one detected failure.

    Produced by the MPI runtime (a rank thread dying), the worker engine
    (a task attempt failing), or the supervising driver (a heartbeat
    deadline expiring); collected into ``JobResult.failures`` so a caller
    can see exactly which worker, task and attempt went down and why.
    """

    # "task" | "rank" | "heartbeat" | "timeout" | "abort" | "wire"
    # (stream severed mid-frame) | "respawn" (surgical recovery exhausted)
    kind: str = "error"
    worker: int = -1  # worker/rank index within its world (-1 unknown)
    phase: str = ""  # "O" / "A" for task failures, world name otherwise
    task_id: int = -1
    round_no: int = -1
    attempt: int = 0  # job attempt (1-based) the failure happened on
    error: str = ""
    traceback: str = ""
    where: str = ""  # thread/world name for rank-level failures

    def describe(self) -> str:
        parts = [self.kind]
        if self.worker >= 0:
            parts.append(f"worker {self.worker}")
        if self.task_id >= 0:
            parts.append(f"{self.phase or '?'} task {self.task_id}")
        if self.attempt > 0:
            parts.append(f"attempt {self.attempt}")
        head = " ".join(parts)
        return f"[{head}] {self.error}" if self.error else f"[{head}]"


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """A configuration key is missing, malformed, or inconsistent."""


class SerializationError(ReproError):
    """A value could not be serialized or deserialized."""


class MPIError(ReproError):
    """Error inside the from-scratch MPI substrate (``repro.mpi``)."""


class MPIAbort(MPIError):
    """Raised in every rank when one rank calls ``comm.abort``."""

    def __init__(self, errorcode: int = 1, message: str = "MPI_Abort"):
        super().__init__(f"{message} (errorcode={errorcode})")
        self.errorcode = errorcode


class DataMPIError(ReproError):
    """Error raised by the DataMPI core library (``repro.core``)."""


#: Alias matching the paper's Java binding exception name (Listing 1).
MPI_D_Exception = DataMPIError


class HDFSError(ReproError):
    """Error from the mini-HDFS substrate."""


class RPCError(ReproError):
    """RPC call failed (timeout, connection refused, handler raised)."""


class CheckpointError(DataMPIError):
    """Checkpoint could not be written, read, or reconciled."""


class TaskFailedError(ReproError):
    """A single task attempt failed; carries the task id and cause."""

    def __init__(self, task_id: str, cause: BaseException | str):
        super().__init__(f"task {task_id} failed: {cause}")
        self.task_id = task_id
        self.cause = cause


class JobFailedError(ReproError):
    """A whole job failed after exhausting retries.

    ``failures`` carries the :class:`FailureRecord` objects describing the
    precise cause(s) — which worker, which task, which attempt.
    """

    def __init__(self, message: str = "", failures: list | None = None):
        super().__init__(message)
        self.failures: list[FailureRecord] = list(failures or [])


class WorkerLostError(ReproError):
    """A working process went silent past the heartbeat deadline."""

    def __init__(
        self,
        worker: int,
        silent_for: float,
        deadline: float,
        record: "FailureRecord | None" = None,
    ):
        super().__init__(
            f"worker {worker} missed the heartbeat deadline "
            f"(silent {silent_for:.1f}s > {deadline:.1f}s)"
        )
        self.worker = worker
        self.failures: list[FailureRecord] = [record] if record is not None else []


class RankRecoveryError(ReproError):
    """Surgical rank recovery could not proceed (budget exhausted,
    redelivery buffer overflowed, or the respawn itself failed); the
    caller degrades to the whole-job restart path."""

    def __init__(self, worker: int, reason: str, record: "FailureRecord | None" = None):
        super().__init__(f"rank recovery for worker {worker} failed: {reason}")
        self.worker = worker
        self.failures: list[FailureRecord] = [record] if record is not None else []


class SimulationError(ReproError):
    """The discrete-event simulator reached an inconsistent state."""
