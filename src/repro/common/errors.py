"""Exception hierarchy for the whole reproduction.

Every subsystem raises a subclass of :class:`ReproError` so callers can
catch at the granularity they care about.  ``MPI_D_Exception`` is kept as
an alias of :class:`DataMPIError` to mirror the paper's Listing 1.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """A configuration key is missing, malformed, or inconsistent."""


class SerializationError(ReproError):
    """A value could not be serialized or deserialized."""


class MPIError(ReproError):
    """Error inside the from-scratch MPI substrate (``repro.mpi``)."""


class MPIAbort(MPIError):
    """Raised in every rank when one rank calls ``comm.abort``."""

    def __init__(self, errorcode: int = 1, message: str = "MPI_Abort"):
        super().__init__(f"{message} (errorcode={errorcode})")
        self.errorcode = errorcode


class DataMPIError(ReproError):
    """Error raised by the DataMPI core library (``repro.core``)."""


#: Alias matching the paper's Java binding exception name (Listing 1).
MPI_D_Exception = DataMPIError


class HDFSError(ReproError):
    """Error from the mini-HDFS substrate."""


class RPCError(ReproError):
    """RPC call failed (timeout, connection refused, handler raised)."""


class CheckpointError(DataMPIError):
    """Checkpoint could not be written, read, or reconciled."""


class TaskFailedError(ReproError):
    """A single task attempt failed; carries the task id and cause."""

    def __init__(self, task_id: str, cause: BaseException | str):
        super().__init__(f"task {task_id} failed: {cause}")
        self.task_id = task_id
        self.cause = cause


class JobFailedError(ReproError):
    """A whole job failed after exhausting retries."""


class SimulationError(ReproError):
    """The discrete-event simulator reached an inconsistent state."""
