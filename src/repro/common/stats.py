"""Small statistics helpers used by the evaluation harness.

The paper reports averages over time windows (Fig 11), latency
distributions (Fig 10c) and improvement percentages; these helpers keep
that arithmetic in one tested place.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np


def improvement_pct(baseline: float, candidate: float) -> float:
    """Percentage improvement of ``candidate`` over ``baseline``.

    Matches the paper's convention for execution times: Hadoop 475 s vs
    DataMPI 312 s is reported as a 34% improvement
    (``(475 - 312) / 475 * 100``).
    """
    if baseline == 0:
        raise ValueError("baseline must be non-zero")
    return (baseline - candidate) / baseline * 100.0


def speedup(baseline: float, candidate: float) -> float:
    """Ratio ``baseline / candidate`` (>1 means candidate is faster)."""
    if candidate == 0:
        raise ValueError("candidate must be non-zero")
    return baseline / candidate


def percentile(data: Sequence[float], q: float) -> float:
    """q-th percentile (0..100) of ``data`` using linear interpolation."""
    if not len(data):
        raise ValueError("empty data")
    return float(np.percentile(np.asarray(data, dtype=float), q))


def histogram(
    data: Sequence[float], edges: Sequence[float]
) -> list[tuple[float, float, float]]:
    """Distribution ratio per bin, as plotted in Fig 10(c).

    Returns ``(lo, hi, ratio)`` triples where ratios sum to 1.0 over all
    samples that fall inside the edges.
    """
    arr = np.asarray(data, dtype=float)
    counts, _ = np.histogram(arr, bins=np.asarray(edges, dtype=float))
    total = counts.sum()
    ratios = counts / total if total else counts.astype(float)
    return [
        (float(edges[i]), float(edges[i + 1]), float(ratios[i]))
        for i in range(len(counts))
    ]


@dataclass
class TimeSeries:
    """An append-only (time, value) series with window statistics.

    Used by the resource profiler to record CPU utilisation, disk/network
    throughput and memory footprint over virtual time (Fig 11, Fig 13b).
    """

    name: str = ""
    times: list[float] = field(default_factory=list)
    values: list[float] = field(default_factory=list)

    def add(self, t: float, v: float) -> None:
        if self.times and t < self.times[-1]:
            raise ValueError("time series must be appended in time order")
        self.times.append(t)
        self.values.append(v)

    def __len__(self) -> int:
        return len(self.times)

    def mean(self, t_lo: float = -math.inf, t_hi: float = math.inf) -> float:
        """Time-weighted mean of the series inside ``[t_lo, t_hi]``.

        Each sample is taken to hold until the next sample time, matching a
        sampling profiler (``iostat``-style) view of resource usage.
        """
        if not self.times:
            raise ValueError(f"time series {self.name!r} is empty")
        t = np.asarray(self.times)
        v = np.asarray(self.values)
        if len(t) == 1:
            return float(v[0])
        # durations each sample is in force; last sample gets median spacing
        spacing = np.diff(t)
        last = float(np.median(spacing)) if len(spacing) else 1.0
        dur = np.append(spacing, last)
        mask = (t >= t_lo) & (t <= t_hi)
        if not mask.any():
            raise ValueError("no samples inside window")
        return float(np.average(v[mask], weights=dur[mask]))

    def max(self) -> float:
        return float(np.max(self.values))

    def integral(self) -> float:
        """Trapezoid-free integral: sum(value * holding duration)."""
        if len(self.times) < 2:
            return 0.0
        t = np.asarray(self.times)
        v = np.asarray(self.values)
        return float(np.sum(v[:-1] * np.diff(t)))


def summarize(values: Iterable[float]) -> dict[str, float]:
    """min/max/mean/median/p95 summary for a sample set."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("empty sample set")
    return {
        "min": float(arr.min()),
        "max": float(arr.max()),
        "mean": float(arr.mean()),
        "median": float(np.median(arr)),
        "p95": float(np.percentile(arr, 95)),
    }
