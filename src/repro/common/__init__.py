"""Shared utilities used by every subsystem of the DataMPI reproduction.

This package holds the pieces that are deliberately framework-agnostic:
size/time units, the typed :class:`~repro.common.config.Configuration`
object (mirroring Hadoop's ``Configuration``/DataMPI's ``conf``), the
key-value record primitives that travel through every pipeline, small
statistics helpers used by the evaluation harness, and the exception
hierarchy.
"""

from repro.common.config import Configuration
from repro.common.logging import get_logger, set_level
from repro.common.errors import (
    CheckpointError,
    ConfigurationError,
    DataMPIError,
    FailureRecord,
    HDFSError,
    JobFailedError,
    MPIError,
    ReproError,
    RPCError,
    SerializationError,
    TaskFailedError,
    WorkerLostError,
)
from repro.common.records import KeyValue, kv_bytes
from repro.common.units import (
    GB,
    GiB,
    KB,
    KiB,
    MB,
    MiB,
    TB,
    format_bytes,
    format_duration,
    parse_bytes,
)

__all__ = [
    "Configuration",
    "get_logger",
    "set_level",
    "ReproError",
    "DataMPIError",
    "MPIError",
    "HDFSError",
    "RPCError",
    "SerializationError",
    "ConfigurationError",
    "CheckpointError",
    "JobFailedError",
    "TaskFailedError",
    "FailureRecord",
    "WorkerLostError",
    "KeyValue",
    "kv_bytes",
    "KB",
    "MB",
    "GB",
    "TB",
    "KiB",
    "MiB",
    "GiB",
    "format_bytes",
    "format_duration",
    "parse_bytes",
]
