"""Typed configuration object shared by Hadoop-like and DataMPI code paths.

The paper's ``MPI_D_INIT`` accepts a ``conf`` map whose reserved keys
(``KEY_CLASS``/``VALUE_CLASS`` etc.) select serialization types, and each
mode "defines a group of configurations" that advanced users may override.
:class:`Configuration` is a thin dict wrapper with typed getters, defaults
layering, and byte-size parsing, mirroring Hadoop's ``Configuration``.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping
from typing import Any

from repro.common.errors import ConfigurationError
from repro.common.units import parse_bytes

_MISSING = object()


class Configuration(Mapping[str, Any]):
    """A layered, typed key-value configuration.

    A configuration may be constructed over a ``defaults`` layer; lookups
    fall through to it, writes always land in the top layer.  This mirrors
    how a DataMPI *mode profile* supplies defaults that the user ``conf``
    overrides (paper §III-A).
    """

    def __init__(
        self,
        values: Mapping[str, Any] | None = None,
        *,
        defaults: "Configuration | Mapping[str, Any] | None" = None,
    ) -> None:
        self._values: dict[str, Any] = dict(values or {})
        self._defaults = defaults

    # -- Mapping protocol -------------------------------------------------
    def __getitem__(self, key: str) -> Any:
        if key in self._values:
            return self._values[key]
        if self._defaults is not None and key in self._defaults:
            return self._defaults[key]
        raise KeyError(key)

    def __iter__(self) -> Iterator[str]:
        seen = set()
        for key in self._values:
            seen.add(key)
            yield key
        if self._defaults is not None:
            for key in self._defaults:
                if key not in seen:
                    yield key

    def __len__(self) -> int:
        return sum(1 for _ in self)

    def __contains__(self, key: object) -> bool:
        return key in self._values or (
            self._defaults is not None and key in self._defaults
        )

    def __repr__(self) -> str:
        return f"Configuration({dict(self)!r})"

    # -- mutation ---------------------------------------------------------
    def set(self, key: str, value: Any) -> "Configuration":
        """Set ``key`` in the top layer; returns self for chaining."""
        self._values[key] = value
        return self

    def update(self, other: Mapping[str, Any]) -> "Configuration":
        self._values.update(other)
        return self

    def child(self, values: Mapping[str, Any] | None = None) -> "Configuration":
        """A new configuration layered on top of this one."""
        return Configuration(values, defaults=self)

    def flat(self) -> dict[str, Any]:
        """Collapse all layers into a plain dict (top layer wins)."""
        return {key: self[key] for key in self}

    # -- typed getters ----------------------------------------------------
    def get(self, key: str, default: Any = None) -> Any:
        try:
            return self[key]
        except KeyError:
            return default

    def require(self, key: str) -> Any:
        try:
            return self[key]
        except KeyError:
            raise ConfigurationError(f"required configuration key missing: {key!r}")

    def get_int(self, key: str, default: int | object = _MISSING) -> int:
        return int(self._typed(key, default))

    def get_float(self, key: str, default: float | object = _MISSING) -> float:
        return float(self._typed(key, default))

    def get_bool(self, key: str, default: bool | object = _MISSING) -> bool:
        value = self._typed(key, default)
        if isinstance(value, bool):
            return value
        if isinstance(value, str):
            lowered = value.strip().lower()
            if lowered in ("true", "yes", "on", "1"):
                return True
            if lowered in ("false", "no", "off", "0"):
                return False
            raise ConfigurationError(f"{key}={value!r} is not a boolean")
        return bool(value)

    def get_bytes(self, key: str, default: int | str | object = _MISSING) -> int:
        """Get a byte size; string values accept suffixes (``"256MB"``)."""
        return parse_bytes(self._typed(key, default))

    def get_str(self, key: str, default: str | object = _MISSING) -> str:
        return str(self._typed(key, default))

    def _typed(self, key: str, default: Any) -> Any:
        try:
            return self[key]
        except KeyError:
            if default is _MISSING:
                raise ConfigurationError(
                    f"required configuration key missing: {key!r}"
                ) from None
            return default
