"""Byte and time unit helpers.

Networking hardware is specified in decimal units (1 GigE = 10**9 bit/s)
while storage and memory sizing in the paper uses binary units (an HDFS
block of "256 MB" is 256 * 2**20 bytes).  Both families are exported so
call sites can say exactly what they mean.
"""

from __future__ import annotations

import re

# Decimal (SI) byte units -- used for network rates.
KB = 10**3
MB = 10**6
GB = 10**9
TB = 10**12

# Binary (IEC) byte units -- used for memory, blocks, file sizes.
KiB = 2**10
MiB = 2**20
GiB = 2**30
TiB = 2**40

#: bits per byte, for converting link speeds (Gbps) to byte rates.
BITS_PER_BYTE = 8

_SUFFIXES = {
    "": 1,
    "b": 1,
    "k": KiB,
    "kb": KiB,
    "kib": KiB,
    "m": MiB,
    "mb": MiB,
    "mib": MiB,
    "g": GiB,
    "gb": GiB,
    "gib": GiB,
    "t": TiB,
    "tb": TiB,
    "tib": TiB,
}

_PARSE_RE = re.compile(r"^\s*([0-9]*\.?[0-9]+)\s*([a-zA-Z]*)\s*$")


def parse_bytes(text: str | int | float) -> int:
    """Parse a human size string (``"256MB"``, ``"1.5 GiB"``) into bytes.

    Integers/floats pass through unchanged (rounded).  Suffixes are
    interpreted as binary units, matching Hadoop's configuration
    conventions (``io.sort.mb`` etc.).
    """
    if isinstance(text, (int, float)):
        return int(text)
    m = _PARSE_RE.match(text)
    if not m:
        raise ValueError(f"cannot parse byte size: {text!r}")
    value, suffix = m.groups()
    try:
        mult = _SUFFIXES[suffix.lower()]
    except KeyError:
        raise ValueError(f"unknown byte suffix {suffix!r} in {text!r}") from None
    return int(float(value) * mult)


def format_bytes(n: int | float, *, decimal: bool = False) -> str:
    """Render a byte count using the largest sensible unit."""
    n = float(n)
    units = (
        [(TB, "TB"), (GB, "GB"), (MB, "MB"), (KB, "KB")]
        if decimal
        else [(TiB, "TiB"), (GiB, "GiB"), (MiB, "MiB"), (KiB, "KiB")]
    )
    for mult, name in units:
        if abs(n) >= mult:
            return f"{n / mult:.2f} {name}"
    return f"{n:.0f} B"


def format_duration(seconds: float) -> str:
    """Render seconds as a compact human duration (``"1h02m"``, ``"312 s"``)."""
    if seconds < 0:
        return "-" + format_duration(-seconds)
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f} ms"
    if seconds < 120.0:
        return f"{seconds:.1f} s"
    minutes, sec = divmod(seconds, 60.0)
    if minutes < 120:
        return f"{int(minutes)}m{sec:04.1f}s"
    hours, minutes = divmod(minutes, 60.0)
    return f"{int(hours)}h{int(minutes):02d}m"


def gbps_to_bytes_per_sec(gbps: float) -> float:
    """Convert a link speed in gigabit/s to bytes/s (decimal gigabits)."""
    return gbps * GB / BITS_PER_BYTE
