"""Lightweight component logging.

The engines are heavily threaded; when something hangs, printf debugging
fights the interleaving.  ``get_logger`` returns stdlib loggers with a
consistent ``repro.<component>`` namespace, a thread-name-carrying
format, and an environment switch so test runs stay silent by default:

    REPRO_LOG=debug pytest tests/core -k streaming
    REPRO_LOG=repro.core.scheduler=debug python examples/quickstart.py

The second form sets per-component levels (comma-separated).  Beyond the
stdlib levels there is ``TRACE`` (numerically 5, below ``DEBUG``) — the
span-debug level the flight recorder's instrumentation sites log at;
``REPRO_LOG=trace`` switches it on.

Configuration is re-entrant: repeated in-process ``mpidrun`` calls (or a
test harness that tears the root logger down between runs) re-attach
exactly one stream handler instead of stacking duplicates.
"""

from __future__ import annotations

import logging
import os
import sys
import threading

_FORMAT = "%(asctime)s %(levelname).1s %(name)s [%(threadName)s] %(message)s"
_configured = False
_lock = threading.Lock()

#: span-debug level for very chatty instrumentation (below DEBUG)
TRACE = 5
logging.addLevelName(TRACE, "TRACE")

#: names ``getattr(logging, ...)`` cannot resolve
_LEVEL_ALIASES = {"TRACE": TRACE}


def _resolve_level(name: str) -> int | None:
    name = name.strip().upper()
    if name in _LEVEL_ALIASES:
        return _LEVEL_ALIASES[name]
    level = getattr(logging, name, None)
    return level if isinstance(level, int) else None


def _configure_root() -> None:
    """Idempotent *and* re-entrant: attaches our handler exactly once,
    re-attaching it when an external reset stripped the root logger."""
    global _configured
    with _lock:
        root = logging.getLogger("repro")
        attached = any(
            getattr(h, "_repro_handler", False) for h in root.handlers
        )
        if _configured and attached:
            return
        if not attached:
            handler = logging.StreamHandler(sys.stderr)
            handler.setFormatter(logging.Formatter(_FORMAT, datefmt="%H:%M:%S"))
            handler._repro_handler = True  # type: ignore[attr-defined]
            root.addHandler(handler)
        root.propagate = False
        if not _configured:
            root.setLevel(logging.WARNING)
            _apply_env(os.environ.get("REPRO_LOG", ""))
        _configured = True


def _apply_env(spec: str) -> None:
    """Parse ``REPRO_LOG``: a bare level, or ``name=level`` pairs."""
    if not spec:
        return
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" in part:
            name, _, level_name = part.partition("=")
            target = logging.getLogger(name.strip())
        else:
            level_name = part
            target = logging.getLogger("repro")
        level = _resolve_level(level_name)
        if level is not None:
            target.setLevel(level)


def get_logger(component: str) -> logging.Logger:
    """A logger named ``repro.<component>`` under the shared configuration."""
    _configure_root()
    name = component if component.startswith("repro") else f"repro.{component}"
    return logging.getLogger(name)


def set_level(level: str, component: str = "repro") -> None:
    """Programmatic override (tests use this instead of the env var)."""
    _configure_root()
    value = _resolve_level(level)
    if value is None:
        raise ValueError(f"unknown log level {level!r}")
    logging.getLogger(component).setLevel(value)
