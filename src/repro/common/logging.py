"""Lightweight component logging.

The engines are heavily threaded; when something hangs, printf debugging
fights the interleaving.  ``get_logger`` returns stdlib loggers with a
consistent ``repro.<component>`` namespace, a thread-name-carrying
format, and an environment switch so test runs stay silent by default:

    REPRO_LOG=debug pytest tests/core -k streaming
    REPRO_LOG=repro.core.scheduler=debug python examples/quickstart.py

The second form sets per-component levels (comma-separated).
"""

from __future__ import annotations

import logging
import os
import sys
import threading

_FORMAT = "%(asctime)s %(levelname).1s %(name)s [%(threadName)s] %(message)s"
_configured = False
_lock = threading.Lock()


def _configure_root() -> None:
    global _configured
    with _lock:
        if _configured:
            return
        root = logging.getLogger("repro")
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(logging.Formatter(_FORMAT, datefmt="%H:%M:%S"))
        root.addHandler(handler)
        root.propagate = False
        root.setLevel(logging.WARNING)
        _apply_env(os.environ.get("REPRO_LOG", ""))
        _configured = True


def _apply_env(spec: str) -> None:
    """Parse ``REPRO_LOG``: a bare level, or ``name=level`` pairs."""
    if not spec:
        return
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" in part:
            name, _, level_name = part.partition("=")
            target = logging.getLogger(name.strip())
        else:
            level_name = part
            target = logging.getLogger("repro")
        level = getattr(logging, level_name.strip().upper(), None)
        if isinstance(level, int):
            target.setLevel(level)


def get_logger(component: str) -> logging.Logger:
    """A logger named ``repro.<component>`` under the shared configuration."""
    _configure_root()
    name = component if component.startswith("repro") else f"repro.{component}"
    return logging.getLogger(name)


def set_level(level: str, component: str = "repro") -> None:
    """Programmatic override (tests use this instead of the env var)."""
    _configure_root()
    value = getattr(logging, level.upper())
    logging.getLogger(component).setLevel(value)
