"""RPC servers.

:class:`HadoopRpcServer` reproduces the Hadoop 1.x ``ipc.Server``
architecture in miniature: accepted connections feed a shared *call
queue* drained by a pool of *handler* threads, and responses go back on
the originating connection.  That queue hand-off is exactly the dispatch
cost the latency model charges it for.

:class:`DataMPIRpcServer` serves the same frames over an MPI
communicator: requests arrive as tagged messages, handlers reply to the
source rank.  It is used for the mpidrun<->worker control protocol tests
and for the Figure 1(b) functional comparison.

:class:`SocketRpcServer` serves the same call protocol over a real
local socket using the shared :class:`repro.net.wire.FrameServer`
accept/frame-read loops — the identical skeleton the MPI process
backend's router runs on, so neither layer reimplements socket serving.
"""

from __future__ import annotations

import queue
import threading
import traceback
from typing import Any, Callable

from repro.common.errors import RPCError
from repro.net import wire
from repro.rpc.protocol import RpcCall, RpcResponse, decode_message, encode_message

#: reserved tag for DataMPI RPC requests on a communicator
RPC_REQUEST_TAG = 1_000_003


class HandlerRegistry:
    """Maps method names to callables; accepts an object or a dict."""

    def __init__(self, target: Any) -> None:
        self._target = target

    def resolve(self, method: str) -> Callable[..., Any]:
        if isinstance(self._target, dict):
            fn = self._target.get(method)
        else:
            fn = getattr(self._target, method, None)
            if method.startswith("_"):
                fn = None  # never expose private attributes over RPC
        if fn is None or not callable(fn):
            raise RPCError(f"no such RPC method: {method!r}")
        return fn

    def invoke(self, call: RpcCall) -> RpcResponse:
        try:
            result = self.resolve(call.method)(*call.args)
            return RpcResponse(call.call_id, True, result)
        except Exception as exc:  # noqa: BLE001 - errors travel to the client
            detail = "".join(traceback.format_exception_only(exc)).strip()
            return RpcResponse(call.call_id, False, error=detail)


class Connection:
    """A bidirectional in-process byte-frame channel (one per client)."""

    def __init__(self) -> None:
        self.to_server: "queue.Queue[bytes | None]" = queue.Queue()
        self.to_client: "queue.Queue[bytes | None]" = queue.Queue()

    def close(self) -> None:
        self.to_server.put(None)


class HadoopRpcServer:
    """Listener -> call queue -> handler pool -> responder."""

    def __init__(self, target: Any, num_handlers: int = 4, name: str = "ipc"):
        self.registry = HandlerRegistry(target)
        self.name = name
        self._call_queue: "queue.Queue[tuple[Connection, bytes] | None]" = (
            queue.Queue()
        )
        self._connections: list[Connection] = []
        self._threads: list[threading.Thread] = []
        self._running = False
        self._num_handlers = num_handlers
        self._lock = threading.Lock()

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> "HadoopRpcServer":
        self._running = True
        for i in range(self._num_handlers):
            t = threading.Thread(
                target=self._handler_loop, name=f"{self.name}-handler-{i}", daemon=True
            )
            t.start()
            self._threads.append(t)
        return self

    def stop(self) -> None:
        self._running = False
        for _ in self._threads:
            self._call_queue.put(None)
        for conn in self._connections:
            conn.to_client.put(None)
        for t in self._threads:
            t.join(timeout=5)

    # -- connection handling ----------------------------------------------------
    def connect(self) -> Connection:
        """Accept a new client; spawns its reader thread."""
        if not self._running:
            raise RPCError(f"server {self.name} is not running")
        conn = Connection()
        with self._lock:
            self._connections.append(conn)
        t = threading.Thread(
            target=self._reader_loop, args=(conn,), daemon=True,
            name=f"{self.name}-reader",
        )
        t.start()
        self._threads.append(t)
        return conn

    def _reader_loop(self, conn: Connection) -> None:
        while self._running:
            frame = conn.to_server.get()
            if frame is None:
                break
            self._call_queue.put((conn, frame))

    def _handler_loop(self) -> None:
        while True:
            item = self._call_queue.get()
            if item is None:
                break
            conn, frame = item
            message = decode_message(frame)
            assert isinstance(message, RpcCall)
            response = self.registry.invoke(message)
            conn.to_client.put(encode_message(response))


class SocketRpcServer:
    """The Hadoop ipc.Server shape over a real local socket.

    Listener (:class:`~repro.net.wire.FrameServer` accept loop) -> call
    queue -> handler pool -> response on the originating connection:
    the same architecture as :class:`HadoopRpcServer`, but clients are
    other processes.  Connect with
    :class:`~repro.rpc.client.SocketRpcClient` at :attr:`address`.
    """

    def __init__(
        self, target: Any, num_handlers: int = 4, name: str = "ipc-socket"
    ) -> None:
        self.registry = HandlerRegistry(target)
        self.name = name
        self.calls_served = 0
        self._call_queue: "queue.Queue[tuple[Any, bytes] | None]" = queue.Queue()
        self._num_handlers = num_handlers
        self._handlers: list[threading.Thread] = []
        self._server = wire.FrameServer(self._on_frame, name=name)

    @property
    def address(self) -> Any:
        """What :class:`~repro.rpc.client.SocketRpcClient` connects to."""
        return self._server.address

    def start(self) -> "SocketRpcServer":
        self._server.start()
        for i in range(self._num_handlers):
            t = threading.Thread(
                target=self._handler_loop,
                name=f"{self.name}-handler-{i}", daemon=True,
            )
            t.start()
            self._handlers.append(t)
        return self

    def _on_frame(self, conn: wire.FrameConnection, kind: int, body: bytes) -> None:
        # runs on the connection's reader thread: enqueue only, so one
        # slow call never blocks the connection's other requests
        if kind == wire.FrameKind.RPC_REQ:
            self._call_queue.put((conn, body))

    def _handler_loop(self) -> None:
        while True:
            item = self._call_queue.get()
            if item is None:
                break
            conn, frame = item
            message = decode_message(frame)
            assert isinstance(message, RpcCall)
            response = self.registry.invoke(message)
            # count before replying so the client never observes a
            # response ahead of the served-call accounting
            self.calls_served += 1
            # best-effort: the client may have hung up mid-call
            conn.try_send(
                wire.pack_frame(wire.FrameKind.RPC_REP, encode_message(response))
            )

    def stop(self) -> None:
        for _ in self._handlers:
            self._call_queue.put(None)
        self._server.stop()
        for t in self._handlers:
            t.join(timeout=5)


class DataMPIRpcServer:
    """RPC dispatcher over a ``repro.mpi`` communicator.

    ``serve_forever`` runs on the server rank's own thread: it receives
    ``(client_rank, frame)`` requests tagged :data:`RPC_REQUEST_TAG`,
    dispatches, and replies with a tag equal to the call id so concurrent
    clients never cross-match.  A ``None`` frame shuts the loop down.
    """

    def __init__(self, comm: Any, target: Any) -> None:
        self.comm = comm
        self.registry = HandlerRegistry(target)
        self.calls_served = 0

    def serve_forever(self) -> int:
        """Serve until a shutdown frame; returns calls served."""
        from repro.mpi.datatypes import ANY_SOURCE, Status

        while True:
            status = Status()
            frame = self.comm.recv(
                source=ANY_SOURCE, tag=RPC_REQUEST_TAG, status=status
            )
            if frame is None:
                return self.calls_served
            message = decode_message(frame)
            assert isinstance(message, RpcCall)
            response = self.registry.invoke(message)
            self.comm.send(
                encode_message(response), dest=status.source, tag=_response_tag(message.call_id)
            )
            self.calls_served += 1

    def shutdown_frame(self) -> None:
        """Frame a client can send to stop the server loop."""


def _response_tag(call_id: int) -> int:
    """Map a call id into the user tag space, away from the request tag."""
    return RPC_REQUEST_TAG + 1 + (call_id % 100_000)
