"""RPC engines.

Two functional RPC systems sharing one call framing and one serialization
mechanism (Writable), mirroring §I-A: "we further implement an RPC system
based on DataMPI by using the same data serialization mechanism as
default Hadoop RPC".

* :class:`~repro.rpc.server.HadoopRpcServer` — the Hadoop 1.x shape:
  listener, shared call queue, handler thread pool, per-connection
  responder.
* :class:`~repro.rpc.server.DataMPIRpcServer` — a dispatcher served over
  a ``repro.mpi`` communicator (tag-matched request/response).
* :class:`~repro.rpc.server.SocketRpcServer` — the Hadoop shape over a
  real local socket, built on the shared :mod:`repro.net.wire` frame
  loops (the same ones the MPI process backend's router uses).

Latency *models* of the same two systems live in :mod:`repro.net.latency`;
this package provides the executable artifacts.
"""

from repro.rpc.client import (
    DataMPIRpcClient,
    HadoopRpcClient,
    RpcProxy,
    SocketRpcClient,
)
from repro.rpc.protocol import RpcCall, RpcResponse, decode_message, encode_message
from repro.rpc.server import DataMPIRpcServer, HadoopRpcServer, SocketRpcServer

__all__ = [
    "RpcCall",
    "RpcResponse",
    "encode_message",
    "decode_message",
    "HadoopRpcServer",
    "DataMPIRpcServer",
    "SocketRpcServer",
    "HadoopRpcClient",
    "DataMPIRpcClient",
    "SocketRpcClient",
    "RpcProxy",
]
