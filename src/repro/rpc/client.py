"""RPC clients and the attribute-style proxy."""

from __future__ import annotations

import itertools
import queue
import threading
from typing import Any

from repro.common.errors import RPCError
from repro.net import wire
from repro.rpc.protocol import RpcCall, RpcResponse, decode_message, encode_message
from repro.rpc.server import Connection, HadoopRpcServer, _response_tag
from repro.rpc.server import RPC_REQUEST_TAG


class HadoopRpcClient:
    """Client for :class:`HadoopRpcServer`; safe for concurrent callers.

    Responses can come back out of order (handler pool), so a response
    router thread matches them to waiting calls by id.
    """

    def __init__(self, server: HadoopRpcServer, timeout: float = 30.0) -> None:
        self._conn: Connection = server.connect()
        self._timeout = timeout
        self._ids = itertools.count(1)
        self._pending: dict[int, "queue.Queue[RpcResponse]"] = {}
        self._lock = threading.Lock()
        self._router = threading.Thread(
            target=self._route_responses, daemon=True, name="rpc-client-router"
        )
        self._router.start()

    def _route_responses(self) -> None:
        while True:
            frame = self._conn.to_client.get()
            if frame is None:
                break
            response = decode_message(frame)
            assert isinstance(response, RpcResponse)
            with self._lock:
                waiter = self._pending.pop(response.call_id, None)
            if waiter is not None:
                waiter.put(response)

    def call(self, method: str, *args: Any) -> Any:
        call = RpcCall(next(self._ids), method, args)
        waiter: "queue.Queue[RpcResponse]" = queue.Queue(maxsize=1)
        with self._lock:
            self._pending[call.call_id] = waiter
        self._conn.to_server.put(encode_message(call))
        try:
            response = waiter.get(timeout=self._timeout)
        except queue.Empty:
            with self._lock:
                self._pending.pop(call.call_id, None)
            raise RPCError(f"RPC {method} timed out after {self._timeout}s") from None
        return response.unwrap()

    def close(self) -> None:
        self._conn.close()
        self._conn.to_client.put(None)


class SocketRpcClient:
    """Client for :class:`~repro.rpc.server.SocketRpcServer`.

    Speaks :mod:`repro.net.wire` frames over a real local socket; safe
    for concurrent callers — the handler pool may reply out of order, so
    a reader thread routes responses to waiting calls by id.
    """

    def __init__(self, address: Any, timeout: float = 30.0) -> None:
        self._conn = wire.connect_local(address, timeout=timeout)
        self._timeout = timeout
        self._ids = itertools.count(1)
        self._pending: dict[int, "queue.Queue[RpcResponse]"] = {}
        self._lock = threading.Lock()
        self._closed = False
        self._reader = threading.Thread(
            target=self._route_responses, daemon=True,
            name="socket-rpc-client-reader",
        )
        self._reader.start()

    def _route_responses(self) -> None:
        while True:
            frame = self._conn.recv()
            if frame is None:
                break
            kind, body = frame
            if kind != wire.FrameKind.RPC_REP:
                continue
            response = decode_message(body)
            assert isinstance(response, RpcResponse)
            with self._lock:
                waiter = self._pending.pop(response.call_id, None)
            if waiter is not None:
                waiter.put(response)

    def call(self, method: str, *args: Any) -> Any:
        if self._closed:
            raise RPCError("socket RPC client is closed")
        call = RpcCall(next(self._ids), method, args)
        waiter: "queue.Queue[RpcResponse]" = queue.Queue(maxsize=1)
        with self._lock:
            self._pending[call.call_id] = waiter
        self._conn.send(wire.pack_frame(wire.FrameKind.RPC_REQ, encode_message(call)))
        try:
            response = waiter.get(timeout=self._timeout)
        except queue.Empty:
            with self._lock:
                self._pending.pop(call.call_id, None)
            raise RPCError(f"RPC {method} timed out after {self._timeout}s") from None
        return response.unwrap()

    def close(self) -> None:
        self._closed = True
        self._conn.close()


class DataMPIRpcClient:
    """Client for :class:`~repro.rpc.server.DataMPIRpcServer`.

    ``comm`` may be an intra- or intercommunicator; ``server_rank`` is the
    rank running ``serve_forever`` on that communicator.
    """

    def __init__(self, comm: Any, server_rank: int, timeout: float = 30.0) -> None:
        self.comm = comm
        self.server_rank = server_rank
        self._timeout = timeout
        self._ids = itertools.count(1)

    def call(self, method: str, *args: Any) -> Any:
        call = RpcCall(next(self._ids), method, args)
        self.comm.send(encode_message(call), dest=self.server_rank, tag=RPC_REQUEST_TAG)
        frame = self.comm.recv(
            source=self.server_rank,
            tag=_response_tag(call.call_id),
            timeout=self._timeout,
        )
        response = decode_message(frame)
        assert isinstance(response, RpcResponse)
        return response.unwrap()

    def shutdown_server(self) -> None:
        """Stop the server loop (it replies to no one for this frame)."""
        self.comm.send(None, dest=self.server_rank, tag=RPC_REQUEST_TAG)


class RpcProxy:
    """Attribute-style sugar: ``proxy.add(1, 2)`` == ``client.call("add", 1, 2)``."""

    def __init__(self, client: HadoopRpcClient | DataMPIRpcClient) -> None:
        self._client = client

    def __getattr__(self, method: str) -> Any:
        if method.startswith("_"):
            raise AttributeError(method)

        def invoke(*args: Any) -> Any:
            return self._client.call(method, *args)

        return invoke
