"""RPC call framing.

Every message is a Writable-serialized frame:

    byte  kind (0 = call, 1 = response)
    vlong call_id
    utf   method        | byte ok-flag
    vint  n_args        | payload (result or error string)
    ...   args

Both RPC engines move these frames; only the transport differs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.common.errors import RPCError
from repro.serde.io import DataInput, DataOutput
from repro.serde.serialization import Serializer, WritableSerializer

_KIND_CALL = 0
_KIND_RESPONSE = 1


@dataclass(frozen=True)
class RpcCall:
    """One outbound invocation."""

    call_id: int
    method: str
    args: tuple[Any, ...]


@dataclass(frozen=True)
class RpcResponse:
    """One reply; exactly one of result/error is meaningful."""

    call_id: int
    ok: bool
    result: Any = None
    error: str = ""

    def unwrap(self) -> Any:
        if not self.ok:
            raise RPCError(self.error)
        return self.result


def encode_message(
    message: RpcCall | RpcResponse, serializer: Serializer | None = None
) -> bytes:
    """Serialize a call or response frame to bytes."""
    serializer = serializer or WritableSerializer()
    out = DataOutput()
    if isinstance(message, RpcCall):
        out.write_byte(_KIND_CALL)
        out.write_vlong(message.call_id)
        out.write_utf(message.method)
        out.write_vint(len(message.args))
        for arg in message.args:
            serializer.serialize(arg, out)
    else:
        out.write_byte(_KIND_RESPONSE)
        out.write_vlong(message.call_id)
        out.write_boolean(message.ok)
        if message.ok:
            serializer.serialize(message.result, out)
        else:
            out.write_utf(message.error)
    return out.getvalue()


def decode_message(
    data: bytes, serializer: Serializer | None = None
) -> RpcCall | RpcResponse:
    """Parse a frame produced by :func:`encode_message`."""
    serializer = serializer or WritableSerializer()
    src = DataInput(data)
    kind = src.read_byte()
    call_id = src.read_vlong()
    if kind == _KIND_CALL:
        method = src.read_utf()
        n = src.read_vint()
        args = tuple(serializer.deserialize(src) for _ in range(n))
        return RpcCall(call_id, method, args)
    if kind == _KIND_RESPONSE:
        ok = src.read_boolean()
        if ok:
            return RpcResponse(call_id, True, serializer.deserialize(src))
        return RpcResponse(call_id, False, error=src.read_utf())
    raise RPCError(f"corrupt RPC frame: kind={kind}")
