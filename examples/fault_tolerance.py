#!/usr/bin/env python
"""Key-value library-level checkpointing: crash a job, restart, recover.

Demonstrates §IV-E: with FT enabled, emitted pairs are persisted in
checkpoint rounds; a crashed job restarts, *reloads* the persisted pairs
from disk (no recomputation for them) and skips the corresponding
emits — producing output identical to a run that never failed.

Run:  python examples/fault_tolerance.py
"""

import tempfile
import threading

from repro.core import mapreduce_job, mpidrun
from repro.core.checkpoint import CheckpointManager
from repro.core.constants import MPI_D_Constants as K
from repro.serde.serialization import WritableSerializer

N = 500


def build_job(out: dict, ft_dir: str, crash_after: int):
    lock = threading.Lock()

    def provider(rank, size):
        for i in range(rank, N, size):
            yield (i, i)

    def mapper(_k, v, emit):
        emit(f"bucket-{v % 9}", v)

    def reducer(key, values, emit):
        emit(key, sum(values))

    def collector(_rank, key, value):
        with lock:
            out[key] = value

    conf = {
        K.FT_ENABLED: True,
        K.FT_DIR: ft_dir,
        K.JOB_ID: "demo-ft",
        K.FT_INTERVAL_RECORDS: 25,  # one checkpoint round per 25 pairs
        K.INJECT_CRASH_AFTER_RECORDS: crash_after,
        K.INJECT_CRASH_TASK: 1,
    }
    return mapreduce_job(
        "ft-demo", provider, mapper, reducer, collector,
        o_tasks=4, a_tasks=2, conf=conf,
    )


def main() -> None:
    ft_dir = tempfile.mkdtemp(prefix="datampi-ft-demo-")
    print(f"checkpoint directory: {ft_dir}\n")

    # --- run 1: inject a crash in O task 1 after 60 emitted records -------
    crashed_out: dict = {}
    result = mpidrun(build_job(crashed_out, ft_dir, crash_after=60), nprocs=2)
    print(f"run 1: success={result.success}")
    print(f"       error: {result.error[:70]}")

    manager = CheckpointManager(ft_dir, "demo-ft", WritableSerializer(), 25)
    for task in range(4):
        reader = manager.reader(task)
        print(f"       O task {task}: {reader.max_round()} rounds,"
              f" {reader.record_count()} records persisted")

    # --- run 2: same job id, crash disabled -> recovery ---------------------
    recovered_out: dict = {}
    job = build_job(recovered_out, ft_dir, crash_after=-1)
    result = mpidrun(job, nprocs=2, raise_on_error=True)
    print(f"\nrun 2: success={result.success}")
    print(f"       reloaded from checkpoints: {result.metrics.reloaded_records}"
          " records (skipped re-sending)")

    # --- reference: a run that never failed -------------------------------------
    reference: dict = {}
    ref_dir = tempfile.mkdtemp(prefix="datampi-ft-ref-")
    mpidrun(build_job(reference, ref_dir, crash_after=-1), nprocs=2,
            raise_on_error=True)
    assert recovered_out == reference
    print("\nrecovered output identical to an uninterrupted run:")
    for key in sorted(recovered_out):
        print(f"  {key} -> {recovered_out[key]}")


if __name__ == "__main__":
    main()
