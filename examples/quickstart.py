#!/usr/bin/env python
"""Quickstart: the paper's Listing 1 — parallel Sort in the Common mode.

This is a line-for-line Python rendering of the 38-line Java example the
paper uses to demonstrate that the extension is "easy-to-program": O
tasks load keys and ``MPI_D.Send`` them with no destination; the library
partitions, moves and sorts them; A tasks drain their partition with
``MPI_D.Recv``.

Run:  python examples/quickstart.py
"""

import threading

from repro.core import MPI_D, MPI_D_Constants, common_job, mpidrun

# output sink: rank -> sorted keys received by that A task
outputs: dict[int, list[str]] = {}
output_lock = threading.Lock()


def load_keys(rank: int, size: int) -> list[str]:
    """Each O task loads its share of the input (here: synthetic keys)."""
    return [f"key-{i:04d}" for i in range(rank, 200, size)]


def sort_task(ctx) -> None:
    """The body of Listing 1: both branches in one SPMD program."""
    conf = {
        MPI_D_Constants.KEY_CLASS: "java.lang.String",
        MPI_D_Constants.VALUE_CLASS: "java.lang.String",
    }
    MPI_D.Init(None, MPI_D.Mode.COMMON, conf)
    if MPI_D.COMM_BIPARTITE_O is not None:
        rank = MPI_D.Comm_rank(MPI_D.COMM_BIPARTITE_O)
        size = MPI_D.Comm_size(MPI_D.COMM_BIPARTITE_O)
        for key in load_keys(rank, size):
            MPI_D.Send(key, "")
    elif MPI_D.COMM_BIPARTITE_A is not None:
        rank = MPI_D.Comm_rank(MPI_D.COMM_BIPARTITE_A)
        received = []
        key_value = MPI_D.Recv()
        while key_value is not None:
            received.append(key_value[0])
            key_value = MPI_D.Recv()
        with output_lock:
            outputs[rank] = received
    MPI_D.Finalize()


def main() -> None:
    # mpidrun -O 4 -A 2 -M common ... (paper §IV-B's launcher)
    job = common_job("sort", sort_task, sort_task, o_tasks=4, a_tasks=2)
    result = mpidrun(job, nprocs=4, raise_on_error=True)

    print(f"job '{result.name}' success={result.success}")
    print(f"records shuffled: {result.metrics.records_sent}")
    print(f"A-task data locality: {result.a_data_locality:.0%}")
    total = 0
    for rank in sorted(outputs):
        keys = outputs[rank]
        assert keys == sorted(keys), "each partition must arrive key-sorted"
        print(f"A task {rank}: {len(keys)} keys, "
              f"first={keys[0]!r}, last={keys[-1]!r}")
        total += len(keys)
    assert total == 200
    print("parallel sort OK")


if __name__ == "__main__":
    main()
