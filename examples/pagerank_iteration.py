#!/usr/bin/env python
"""PageRank in the Iteration mode vs a per-round Hadoop pipeline.

The paper's Fig 10(b) workload: rank a random web-like graph for several
rounds.  The DataMPI version is *one* persistent Iteration-mode job —
graph structure and ranks stay in process-local state, only contribution
key-value pairs move each round.  The Hadoop baseline runs one complete
MapReduce job per round, rewriting the whole graph through HDFS.  Both
must agree with plain power iteration and (at convergence) networkx.

Run:  python examples/pagerank_iteration.py
"""

import time

from repro.hadoop import MiniHadoopCluster
from repro.hdfs import MiniDFSCluster
from repro.workloads import (
    generate_graph,
    pagerank_datampi,
    pagerank_hadoop,
    pagerank_reference,
)
from repro.workloads.pagerank import pagerank_networkx

NODES, ROUNDS = 150, 6


def main() -> None:
    graph = generate_graph(NODES, mean_out_degree=5)
    edges = sum(len(adj) for adj in graph.values())
    print(f"graph: {NODES} nodes, {edges} edges, {ROUNDS} rounds\n")

    reference = pagerank_reference(graph, ROUNDS)

    t0 = time.perf_counter()
    result, ranks = pagerank_datampi(graph, ROUNDS, o_tasks=3, a_tasks=2, nprocs=3)
    datampi_wall = time.perf_counter() - t0
    err = max(abs(ranks[n] - reference[n]) for n in graph)
    print(f"DataMPI Iteration mode: one job, {ROUNDS} rounds,"
          f" {result.metrics.records_sent} pairs shuffled,"
          f" max error vs power iteration: {err:.2e}")

    cluster = MiniDFSCluster(num_nodes=3, block_size=4096)
    hadoop = MiniHadoopCluster(cluster)
    t0 = time.perf_counter()
    round_results, hranks = pagerank_hadoop(hadoop, graph, ROUNDS, num_reduces=2)
    hadoop_wall = time.perf_counter() - t0
    herr = max(abs(hranks[n] - reference[n]) for n in graph)
    total_spills = sum(r.counters.spill_files for r in round_results)
    print(f"Hadoop baseline: {len(round_results)} chained jobs,"
          f" {total_spills} map spills, max error: {herr:.2e}")

    # cross-validate the update rule against converged networkx ranks
    nx_ranks = pagerank_networkx(graph)
    converged = pagerank_reference(graph, rounds=80)
    nx_err = max(abs(converged[n] - nx_ranks[n]) for n in graph)
    print(f"networkx cross-check (80 rounds vs converged): {nx_err:.2e}")

    top = sorted(ranks.items(), key=lambda kv: -kv[1])[:5]
    print("\ntop-5 ranked nodes:",
          ", ".join(f"{n} ({r:.4f})" for n, r in top))
    print(f"\nwall time (functional engines, not the paper's metric): "
          f"DataMPI {datampi_wall:.2f}s, Hadoop-per-round {hadoop_wall:.2f}s")
    print("see benchmarks/bench_fig10b_iteration.py for the simulated "
          "40 GB / 7-round comparison (paper: 41% improvement)")


if __name__ == "__main__":
    main()
