#!/usr/bin/env python
"""K-means clustering in the Iteration mode (the Mahout-vs-DataMPI shape).

Points stay partitioned in process-local state across rounds; only
pre-aggregated per-cluster partial sums travel forward, and new
centroids travel back over the bidirectional plane.  The Hadoop baseline
re-reads all points from HDFS every round, like Mahout 0.8.

Run:  python examples/kmeans_iteration.py
"""

import numpy as np

from repro.hadoop import MiniHadoopCluster
from repro.hdfs import MiniDFSCluster
from repro.workloads import (
    generate_points,
    kmeans_datampi,
    kmeans_hadoop,
    kmeans_reference,
)

POINTS, CLUSTERS, ROUNDS = 600, 5, 5


def main() -> None:
    points = generate_points(POINTS, CLUSTERS, dims=2)
    print(f"{POINTS} points, {CLUSTERS} clusters, {ROUNDS} Lloyd rounds\n")

    reference = kmeans_reference(points, CLUSTERS, ROUNDS)

    result, centroids = kmeans_datampi(
        points, CLUSTERS, ROUNDS, o_tasks=3, a_tasks=2, nprocs=3
    )
    assert np.allclose(centroids, reference)
    print(f"DataMPI Iteration mode: {result.metrics.records_sent} pairs"
          f" shuffled over {ROUNDS} rounds (pre-aggregated partial sums)")

    cluster = MiniDFSCluster(num_nodes=3, block_size=8192)
    hadoop = MiniHadoopCluster(cluster)
    round_results, hadoop_centroids = kmeans_hadoop(
        hadoop, points, CLUSTERS, ROUNDS, num_reduces=2
    )
    assert np.allclose(hadoop_centroids, reference)
    reread = sum(r.counters.map_input_records for r in round_results)
    print(f"Hadoop baseline: {len(round_results)} chained jobs re-read"
          f" {reread} point records from HDFS ({ROUNDS}x the dataset)")

    print("\nfinal centroids (identical across engines and NumPy Lloyd):")
    for i, c in enumerate(centroids):
        print(f"  cluster {i}: ({c[0]:7.3f}, {c[1]:7.3f})")
    print("\nsee benchmarks/bench_fig10b_iteration.py for the simulated"
          " 40 GB comparison (paper: 40% improvement)")


if __name__ == "__main__":
    main()
