#!/usr/bin/env python
"""Top-K over a live word stream: DataMPI Streaming mode vs mini-S4.

The Fig 10(c) workload: count a skewed word stream and keep the hottest
keys.  Streaming mode delivers pairs while the O tasks are still
producing — the A tasks see data long before the stream ends — whereas
MapReduce mode would hold everything back until the exchange completes.

Run:  python examples/streaming_topk.py
"""

import numpy as np

from repro.simulate.streaming_model import latency_distribution, topk_comparison
from repro.workloads import generate_stream, topk_datampi, topk_reference, topk_s4

EVENTS, K = 4000, 8


def main() -> None:
    words = generate_stream(EVENTS, vocab=60)
    expected = topk_reference(words, K)
    print(f"stream: {EVENTS} events, vocabulary 60, top-{K}\n")

    result, top, latencies = topk_datampi(words, K, o_tasks=2, a_tasks=3, nprocs=3)
    assert top == expected
    print("DataMPI Streaming mode:")
    for word, count in top:
        print(f"  {word}: {count}")
    print(f"  per-record latency p50={np.median(latencies) * 1e3:.2f} ms"
          f" p99={np.percentile(latencies, 99) * 1e3:.2f} ms (in-process)\n")

    s4_top, s4_latencies = topk_s4(words, K, num_nodes=3)
    assert s4_top == expected
    print(f"mini-S4: identical top-{K}; "
          f"{len(s4_latencies)} PE events processed\n")

    print("simulated cluster latency distributions (paper Fig 10c,"
          " 1K msg/s x 100 B):")
    sims = topk_comparison(duration=60.0)
    for system, values in sims.items():
        buckets = latency_distribution(values)
        bar = " ".join(
            f"{lo:.0f}-{hi:.0f}s:{ratio:.2f}" for lo, hi, ratio in buckets if ratio > 0.01
        )
        print(f"  {system:8s} range {values.min():.2f}-{values.max():.2f}s | {bar}")
    print("paper: DataMPI 0.5-4 s, S4 1.5-12 s")


if __name__ == "__main__":
    main()
