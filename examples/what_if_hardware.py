#!/usr/bin/env python
"""What-if analysis: does DataMPI's advantage survive better hardware?

The paper measured 1GigE + single-HDD nodes (2013 hardware).  A natural
question for an adopter: how much of the 30-40% TeraSort win remains on
SSDs or a 10GigE fabric?  The simulator makes this a three-line sweep —
define a cluster spec, run both framework models, compare.

Run:  python examples/what_if_hardware.py
"""

from dataclasses import replace

from repro.common.units import MiB
from repro.simulate import SimCluster, TESTBED_A
from repro.simulate.cluster import ClusterSpec, NodeSpec
from repro.simulate.datampi_model import DataMPISimParams, simulate_datampi_job
from repro.simulate.hadoop_model import HadoopSimParams, simulate_hadoop_job
from repro.simulate.profiles import TERASORT

DATA = 96e9


def run_pair(spec: ClusterSpec) -> tuple[float, float]:
    tasks = spec.num_slaves * spec.reduce_slots
    hadoop = simulate_hadoop_job(
        SimCluster(spec),
        HadoopSimParams(TERASORT, DATA, spec.default_block_size, tasks),
        profile_resources=False,
    )
    datampi = simulate_datampi_job(
        SimCluster(spec),
        DataMPISimParams(TERASORT, DATA, spec.default_block_size, tasks),
        profile_resources=False,
    )
    return hadoop.duration, datampi.duration


def variant(name: str, **node_changes) -> tuple[str, ClusterSpec]:
    node = replace(TESTBED_A.node, **node_changes)
    return name, replace(TESTBED_A, node=node)


def main() -> None:
    variants = [
        ("paper hardware (HDD, 1GigE)", TESTBED_A),
        variant("SATA SSD (500 MB/s, no seeks)", disk_rate=500e6, disk_seek=0.0),
        variant("NVMe (3 GB/s, no seeks)", disk_rate=3e9, disk_seek=0.0),
        variant("10GigE network", nic_rate=1170e6),
        variant("SSD + 10GigE", disk_rate=500e6, disk_seek=0.0,
                nic_rate=1170e6),
    ]
    print(f"96 GB TeraSort on 16 nodes, varying the hardware:\n")
    print(f"{'variant':<34}{'Hadoop':>9}{'DataMPI':>9}{'improv':>9}")
    for name, spec in variants:
        hadoop, datampi = run_pair(spec)
        gain = (hadoop - datampi) / hadoop * 100
        print(f"{name:<34}{hadoop:>8.0f}s{datampi:>8.0f}s{gain:>8.1f}%")
    print(
        "\nreading: the advantage lives in the paper's disk-bound hardware —"
        "\nDataMPI wins by never writing map output to the slow shared HDD."
        "\nOnce storage is fast, that saving vanishes while DataMPI's O-side"
        "\npartition/sort/send CPU stays on the critical path, so the gap"
        "\ncloses and can even invert.  A faster network alone changes"
        "\nnothing: at 1 GigE-era data rates the shuffle was never"
        "\nnetwork-bound on this workload."
    )


if __name__ == "__main__":
    main()
