#!/usr/bin/env python
"""Figure 1 microbenchmarks: primitive-level bandwidth and RPC latency.

Prints the paper's motivating comparison — Hadoop Jetty vs DataMPI vs
MVAPICH2 peak bandwidth on three fabrics, and Hadoop RPC vs DataMPI RPC
latency — and then exercises the *functional* RPC engines to show both
really serve calls over the same Writable frames.

Run:  python examples/microbenchmarks.py
"""

import time

from repro.net.bandwidth import summarize_figure_1a
from repro.net.latency import summarize_figure_1b
from repro.rpc.client import DataMPIRpcClient, HadoopRpcClient, RpcProxy
from repro.rpc.server import DataMPIRpcServer, HadoopRpcServer
from repro.mpi import run_world


def functional_rpc_demo() -> None:
    print("== functional RPC engines (same Writable frames) ==")

    class NameNodeProtocol:
        """A Hadoop-flavoured RPC target."""

        def get_block_locations(self, path, offset, length):
            return [("dn-3", 0), ("dn-7", 1)]

        def renew_lease(self, client_id):
            return True

    server = HadoopRpcServer(NameNodeProtocol(), num_handlers=4).start()
    proxy = RpcProxy(HadoopRpcClient(server))
    t0 = time.perf_counter()
    calls = 200
    for _ in range(calls):
        proxy.renew_lease("client-1")
    hadoop_us = (time.perf_counter() - t0) / calls * 1e6
    locations = proxy.get_block_locations("/data/part-0", 0, 1 << 20)
    server.stop()
    print(f"Hadoop-style RPC: {calls} calls, {hadoop_us:.1f} us/call"
          f" (in-process); sample reply: {locations}")

    def mpi_world(comm):
        if comm.rank == 0:
            served = DataMPIRpcServer(comm, NameNodeProtocol()).serve_forever()
            return served
        client = DataMPIRpcClient(comm, server_rank=0)
        t0 = time.perf_counter()
        for _ in range(calls):
            client.call("renew_lease", "client-1")
        per_call = (time.perf_counter() - t0) / calls * 1e6
        client.shutdown_server()
        return per_call

    served, datampi_us = run_world(2, mpi_world)
    print(f"DataMPI RPC over MPI transport: {served} calls served,"
          f" {datampi_us:.1f} us/call (in-process)\n")


if __name__ == "__main__":
    print(summarize_figure_1a())
    print()
    print(summarize_figure_1b())
    print()
    functional_rpc_demo()
