#!/usr/bin/env python
"""TeraSort end to end on both engines, plus the simulated evaluation.

Demonstrates the full reproduction stack on one workload:

1. TeraGen writes record-aligned input into mini-HDFS;
2. the same sort runs as a DataMPI MapReduce-mode job (range
   partitioner + byte comparator, Table II functions) and as a
   mini-Hadoop job;
3. outputs are verified globally sorted and byte-identical;
4. the discrete-event models replay the paper's 168 GB configuration
   and report the Figure 9 numbers.

Run:  python examples/terasort_pipeline.py
"""

from repro.common.units import MiB
from repro.hadoop import MiniHadoopCluster
from repro.hdfs import MiniDFSCluster
from repro.simulate import TESTBED_A, SimCluster
from repro.simulate.datampi_model import DataMPISimParams, simulate_datampi_job
from repro.simulate.hadoop_model import HadoopSimParams, simulate_hadoop_job
from repro.simulate.profiles import TERASORT
from repro.workloads import (
    teragen_to_dfs,
    terasort_datampi,
    terasort_hadoop,
    verify_terasort_output,
)
from repro.workloads.teragen import RECORD_LEN

NUM_RECORDS = 3000


def functional_run() -> None:
    print("== functional run (real engines, small data) ==")
    dfs_cluster = MiniDFSCluster(num_nodes=4, block_size=200 * RECORD_LEN)
    teragen_to_dfs(dfs_cluster.client(0), "/tera/in", NUM_RECORDS)
    dfs = dfs_cluster.client(None)
    print(f"teragen: {NUM_RECORDS} records"
          f" ({dfs.file_size('/tera/in') / 1e6:.2f} MB) in"
          f" {len(dfs_cluster.locality_map('/tera/in'))} blocks")

    result = terasort_datampi(
        dfs_cluster, "/tera/in", "/tera/out-datampi", o_tasks=4, a_tasks=3,
        nprocs=4,
    )
    assert verify_terasort_output(dfs, "/tera/out-datampi", NUM_RECORDS)
    print(f"DataMPI: sorted {result.metrics.records_sent} records,"
          f" A locality {result.a_data_locality:.0%},"
          f" {result.metrics.blocks_sent} shuffle blocks")

    hadoop = MiniHadoopCluster(dfs_cluster)
    hresult = terasort_hadoop(hadoop, "/tera/in", "/tera/out-hadoop", 3)
    assert verify_terasort_output(dfs, "/tera/out-hadoop", NUM_RECORDS)
    print(f"Hadoop : {hresult.counters.map_output_records} map outputs,"
          f" {hresult.counters.spill_files} spills,"
          f" {hresult.counters.shuffle_fetches} shuffle fetches,"
          f" map locality {hresult.counters.map_locality:.0%}")

    d_bytes = b"".join(dfs.read_file(p) for p in dfs.listdir("/tera/out-datampi"))
    h_bytes = b"".join(dfs.read_file(p) for p in dfs.listdir("/tera/out-hadoop"))
    assert d_bytes == h_bytes
    print("outputs byte-identical across engines\n")


def simulated_run() -> None:
    print("== simulated evaluation (paper's 168 GB on Testbed A) ==")
    data = 168e9
    tasks = TESTBED_A.num_slaves * TESTBED_A.reduce_slots
    hadoop = simulate_hadoop_job(
        SimCluster(TESTBED_A),
        HadoopSimParams(TERASORT, data, 256 * MiB, tasks, name="terasort"),
    )
    datampi = simulate_datampi_job(
        SimCluster(TESTBED_A),
        DataMPISimParams(TERASORT, data, 256 * MiB, tasks, name="terasort"),
    )
    gain = (hadoop.duration - datampi.duration) / hadoop.duration * 100
    print(f"Hadoop : {hadoop.summary()}")
    print(f"DataMPI: {datampi.summary()}")
    print(f"improvement {gain:.1f}%  (paper: 475 s vs 312 s, 34.3%)")


if __name__ == "__main__":
    functional_run()
    simulated_run()
