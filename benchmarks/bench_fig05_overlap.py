"""Figure 5: overlapping comparison of Hadoop and DataMPI (quantified).

The paper's Figure 5 is a schematic: Hadoop's shuffle lags the maps (the
reducers "pull map completion events, copy data remotely, and merge them
totally"), while DataMPI's O-side pipeline moves the intermediate data
*during* the O phase.  This bench turns the schematic into a number: the
fraction of all shuffle bytes that crossed the network while the
map/O computation was still running.
"""

from repro.simulate.figures import GB, fig9_progress

from conftest import table


def shuffle_overlap_fraction(report, compute_phase: str) -> float:
    """Fraction of total network bytes moved inside ``compute_phase``."""
    start, end = report.phases[compute_phase]
    series = report.net
    total = series.integral()
    if total == 0:
        return 0.0
    inside = 0.0
    for i in range(len(series.times) - 1):
        t0, t1 = series.times[i], series.times[i + 1]
        window = max(0.0, min(t1, end) - max(t0, start))
        inside += series.values[i] * window
    return inside / total


def network_quiet_time(report, threshold: float = 1e6) -> float:
    """Virtual time of the last sample with meaningful network activity."""
    last = 0.0
    for t, v in zip(report.net.times, report.net.values):
        if v > threshold:
            last = t
    return last


def test_fig05_shuffle_overlap(benchmark, emit):
    reports = benchmark.pedantic(
        fig9_progress, kwargs=dict(data_bytes=96 * GB), rounds=1, iterations=1
    )
    hadoop, datampi = reports["Hadoop"], reports["DataMPI"]
    h_overlap = shuffle_overlap_fraction(hadoop, "map")
    d_overlap = shuffle_overlap_fraction(datampi, "O")
    # the lag Figure 5 illustrates: how long the shuffle keeps running
    # after the compute phase already finished, and how much work still
    # stands between the last map and job completion
    h_lag = network_quiet_time(hadoop) - hadoop.phases["map"][1]
    d_lag = network_quiet_time(datampi) - datampi.phases["O"][1]
    h_tail = hadoop.duration - hadoop.phases["map"][1]
    d_tail = datampi.duration - datampi.phases["O"][1]
    rows = [
        ["Hadoop", f"{h_overlap:.0%}", f"{max(0.0, h_lag):.0f}s",
         f"{h_tail:.0f}s ({h_tail / hadoop.duration:.0%})"],
        ["DataMPI", f"{d_overlap:.0%}", f"{max(0.0, d_lag):.0f}s",
         f"{d_tail:.0f}s ({d_tail / datampi.duration:.0%})"],
    ]
    text = table(
        ["framework", "shuffle during compute", "shuffle lag", "post-compute tail"],
        rows,
    )
    text += (
        "\npaper (Fig 5, schematic): DataMPI's O-side pipeline finishes the"
        "\nexchange with the O phase; Hadoop's copy/merge trail the maps, so"
        "\nits reduce work drags a longer tail behind the compute phase."
    )
    emit("fig05_shuffle_overlap", text)

    # DataMPI pushes essentially everything during the O phase and its
    # exchange is over when the O phase is (sends drained before A starts)
    assert d_overlap > 0.9
    assert d_lag <= 5.0
    # Hadoop keeps shuffling after the maps finished, and its absolute
    # post-compute tail exceeds DataMPI's: both sides do the same reduce
    # compute + output write, but Hadoop's tail also carries the leftover
    # copy and the on-disk merge passes (Fig 5's trailing stages)
    assert h_lag > 5.0
    assert h_tail > d_tail + 10.0
