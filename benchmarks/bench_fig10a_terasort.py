"""Figure 10(a): TeraSort execution time, 48-192 GB, plus WordCount.

Paper claims: DataMPI gains 32-41% over Hadoop across the size sweep;
WordCount (smaller data movement) still improves by 31%.
"""

from repro.simulate.figures import fig10a_terasort_sweep, wordcount_comparison

from conftest import improvement, table


def test_fig10a_terasort_sizes(benchmark, emit):
    sweep = benchmark.pedantic(
        fig10a_terasort_sweep,
        kwargs=dict(sizes_gb=(48, 96, 144, 192)),
        rounds=1,
        iterations=1,
    )
    rows = []
    for gb, row in sweep.items():
        rows.append(
            [gb, f"{row['Hadoop']:.0f}", f"{row['DataMPI']:.0f}",
             f"{improvement(row['Hadoop'], row['DataMPI']):.1f}%"]
        )
    text = table(["data(GB)", "Hadoop(s)", "DataMPI(s)", "improv"], rows)
    text += "\npaper: 32-41% improvement from 48 GB to 192 GB"
    emit("fig10a_terasort_sizes", text)

    for gb, row in sweep.items():
        gain = improvement(row["Hadoop"], row["DataMPI"])
        assert 28 < gain < 45, f"{gb} GB out of band: {gain:.1f}%"


def test_fig10a_wordcount(benchmark, emit):
    result = benchmark.pedantic(wordcount_comparison, rounds=1, iterations=1)
    gain = improvement(result["Hadoop"], result["DataMPI"])
    text = table(
        ["workload", "Hadoop(s)", "DataMPI(s)", "improv"],
        [["WordCount 96GB", f"{result['Hadoop']:.0f}",
          f"{result['DataMPI']:.0f}", f"{gain:.1f}%"]],
    )
    text += "\npaper: DataMPI speeds up WordCount by 31%"
    emit("fig10a_wordcount", text)
    assert 22 < gain < 40
