"""Figure 10(c): Top-K streaming latency distribution, 1 K msg/s x 100 B.

Paper claims: DataMPI latencies range 0.5-4 s while S4's range 1.5-12 s
("more left is better" on the distribution plot).
"""

import numpy as np

from repro.simulate.figures import fig10c_topk

from conftest import table


def test_fig10c_topk_latency_distribution(benchmark, emit):
    results = benchmark.pedantic(
        fig10c_topk, kwargs=dict(duration=120.0), rounds=1, iterations=1
    )
    rows = []
    buckets = results["S4"]["distribution"]
    for i, (lo, hi, _) in enumerate(buckets):
        rows.append(
            [f"{lo:.0f}-{hi:.0f}s",
             f"{results['DataMPI']['distribution'][i][2]:.3f}",
             f"{results['S4']['distribution'][i][2]:.3f}"]
        )
    text = table(["latency", "DataMPI ratio", "S4 ratio"], rows)
    text += (
        f"\n\nDataMPI: {results['DataMPI']['min']:.2f}-"
        f"{results['DataMPI']['max']:.2f}s | "
        f"S4: {results['S4']['min']:.2f}-{results['S4']['max']:.2f}s"
        "\npaper: DataMPI 0.5-4 s, S4 1.5-12 s"
    )
    emit("fig10c_topk_latency", text)

    assert results["DataMPI"]["max"] < 5.0
    assert 0.3 < results["DataMPI"]["min"] < 1.0
    assert results["S4"]["max"] > 6.0
    assert results["S4"]["min"] > 1.0
    assert results["DataMPI"]["median"] < results["S4"]["median"]


def test_fig10c_functional_engines_agree(benchmark):
    """The real threaded engines produce identical top-k answers."""
    from repro.workloads import (
        generate_stream,
        topk_datampi,
        topk_reference,
        topk_s4,
    )

    words = generate_stream(1500)

    def run():
        _, top, _ = topk_datampi(words, 5, o_tasks=2, a_tasks=2, nprocs=2)
        return top

    top = benchmark.pedantic(run, rounds=1, iterations=1)
    assert top == topk_reference(words, 5)
    s4_top, _ = topk_s4(words, 5)
    assert s4_top == top
