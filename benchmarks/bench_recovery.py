"""Recovery-cost benchmark: surgical rank respawn vs. whole-job restart.

A worker process is SIGKILL'd mid-shuffle (the ``kill_rank`` fault at
the driver-side router) and the same wordcount job heals two ways:

* **surgical** — ``mpi.d.rank.max.respawns`` armed: only the dead rank
  is respawned, its tasks replayed, its in-flight shuffle batches
  redelivered; the job never restarts.
* **whole-job** — the classic supervised path: checkpoint-backed abort
  and rerun of every rank under ``mpi.d.job.max.restarts``.

Both are compared against an unfaulted **baseline** of the identical
job.  For each process count the report records wall time, *recovery
latency* (wall minus baseline: the end-to-end price of healing the
fault, detection included) and the *wasted-work ratio* (that latency as
a fraction of a baseline run — how much of a full job's worth of time
the fault burned; a whole-job restart re-runs every rank so its ratio
approaches 1.0, surgical replay of one rank should stay well under).
Raw task-attempt counts are recorded too, but note they only cover
*reported* work: a SIGKILL'd incarnation takes its partial attempt
counts to the grave, so attempts alone undercount the restart path's
waste and show none for the surgical path.  Output is verified
identical across all three runs.

Writes ``BENCH_RECOVERY.json`` at the repo root; ``--trace-dir DIR``
additionally saves a flight-recorder journal per faulted run so the
recovery timeline (``recovery.rank.lost`` → ``recovery.respawn`` →
``recovery.rank.online``) can be inspected with ``repro trace``.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_recovery.py [--quick] [--out PATH]

or under pytest (quick mode, shape assertions only)::

    PYTHONPATH=src python -m pytest benchmarks/bench_recovery.py -s
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import platform
import sys
import tempfile
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(REPO_ROOT, "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.core import FileSink, mapreduce_job, mpidrun  # noqa: E402
from repro.core.constants import MPI_D_Constants as K, SHUFFLE_TAG  # noqa: E402
from repro.mpi import FaultInjector  # noqa: E402
from repro.workloads.wordcount import generate_text, wordcount_reference  # noqa: E402

DEFAULT_OUT = os.path.join(REPO_ROOT, "BENCH_RECOVERY.json")

#: sha256 rounds per token: enough compute per task that re-executing
#: work is visible in wall time, small enough to keep runs short
HASH_ROUNDS = 40

#: shuffle envelopes to let through before the SIGKILL lands — the job
#: must be genuinely mid-shuffle, with batches in flight both ways
KILL_AFTER = 8


def _mapper(_key, line, emit):
    for word in line.split():
        digest = word.encode()
        for _ in range(HASH_ROUNDS):
            digest = hashlib.sha256(digest).digest()
        emit(word, 1)


def _reducer(word, counts, emit):
    emit(word, sum(counts))


def _task_attempts(result) -> int:
    return result.metrics.o_tasks_run + result.metrics.a_tasks_run


def _run(lines, nprocs, conf, injector=None, trace_path=None):
    sink = FileSink.temporary(f"bench-recovery-{nprocs}")

    def provider(rank, size, _lines=lines):
        for i, line in enumerate(_lines):
            if i % size == rank:
                yield (i, line)

    full_conf = {
        K.LAUNCHER: "processes",
        K.SHUFFLE_BATCH_BYTES: 4096,  # plenty of envelopes in flight
        K.PLANE_TIMEOUT_SECONDS: 120.0,
    }
    full_conf.update(conf)
    if trace_path:
        full_conf[K.TRACE_PATH] = trace_path
    job = mapreduce_job(
        "bench-recovery", provider, _mapper, _reducer, sink,
        o_tasks=nprocs * 2, a_tasks=nprocs, conf=full_conf,
    )
    t0 = time.perf_counter()
    result = mpidrun(job, nprocs=nprocs, timeout=600.0,
                     fault_injector=injector)
    wall = time.perf_counter() - t0
    assert result.success, f"bench job failed: {result.error}"
    merged = sink.merged()
    sink.cleanup()
    return result, wall, merged


def bench_nprocs(nprocs: int, lines, expected, trace_dir: str | None) -> dict:
    def trace_path(leg):
        if not trace_dir:
            return None
        return os.path.join(trace_dir, f"recovery-{leg}-np{nprocs}.trace.jsonl")

    # -- baseline: same job, no fault, recovery off ---------------------
    base_result, base_wall, merged = _run(lines, nprocs, {})
    assert merged == expected
    base_tasks = _task_attempts(base_result)

    # -- surgical: SIGKILL one rank, respawn it in place ----------------
    injector = FaultInjector()
    injector.kill_rank(tag=SHUFFLE_TAG, skip_first=KILL_AFTER, max_matches=1)
    surg_result, surg_wall, merged = _run(
        lines, nprocs, {K.RANK_MAX_RESPAWNS: 2},
        injector=injector, trace_path=trace_path("surgical"),
    )
    assert merged == expected
    assert surg_result.restarts == 0, "surgical leg must not restart the job"
    assert surg_result.metrics.respawns >= 1

    # -- whole-job: same SIGKILL, classic checkpointed restart ----------
    injector = FaultInjector()
    injector.kill_rank(tag=SHUFFLE_TAG, skip_first=KILL_AFTER, max_matches=1)
    with tempfile.TemporaryDirectory(prefix="bench-recovery-ft-") as ft_dir:
        restart_result, restart_wall, merged = _run(
            lines, nprocs,
            {
                K.FT_ENABLED: True,
                K.FT_DIR: ft_dir,
                K.JOB_ID: f"bench-recovery-{nprocs}",
                K.FT_INTERVAL_RECORDS: 1000,
                K.JOB_MAX_RESTARTS: 2,
                K.RESTART_BACKOFF_SECONDS: 0.01,
            },
            injector=injector, trace_path=trace_path("whole-job"),
        )
    assert merged == expected
    assert restart_result.restarts >= 1, "whole-job leg must restart"

    # wasted work as wall-clock: the fraction of a baseline run the
    # fault cost end-to-end (detection + respawn/restart + recompute)
    surg_wasted = max(0.0, surg_wall - base_wall) / base_wall
    restart_wasted = max(0.0, restart_wall - base_wall) / base_wall

    entry = {
        "nprocs": nprocs,
        "baseline": {
            "wall_s": round(base_wall, 3),
            "task_attempts": base_tasks,
        },
        "surgical": {
            "wall_s": round(surg_wall, 3),
            "recovery_latency_s": round(surg_wall - base_wall, 3),
            "wasted_work_ratio": round(surg_wasted, 3),
            "task_attempts": _task_attempts(surg_result),
            "respawns": surg_result.metrics.respawns,
            "redelivered_frames": surg_result.metrics.redelivered_frames,
            "stale_frames_dropped": surg_result.metrics.stale_frames_dropped,
            "restarts": surg_result.restarts,
        },
        "whole_job": {
            "wall_s": round(restart_wall, 3),
            "recovery_latency_s": round(restart_wall - base_wall, 3),
            "wasted_work_ratio": round(restart_wasted, 3),
            "task_attempts": _task_attempts(restart_result),
            "restarts": restart_result.restarts,
        },
    }
    print(
        f"np={nprocs}: baseline {entry['baseline']['wall_s']}s | "
        f"surgical +{entry['surgical']['recovery_latency_s']}s "
        f"(waste {entry['surgical']['wasted_work_ratio']}) | "
        f"whole-job +{entry['whole_job']['recovery_latency_s']}s "
        f"(waste {entry['whole_job']['wasted_work_ratio']})"
    )
    return entry


def run_bench(quick: bool, out_path: str, trace_dir: str | None = None) -> dict:
    if trace_dir:
        os.makedirs(trace_dir, exist_ok=True)
    lines = generate_text(600 if quick else 2400, words_per_line=12)
    expected = wordcount_reference(lines)
    report = {
        "bench": "recovery",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count() or 1,
        "quick": quick,
        "hash_rounds": HASH_ROUNDS,
        "lines": len(lines),
        "runs": [],
    }
    for nprocs in [4] if quick else [4, 8]:
        report["runs"].append(bench_nprocs(nprocs, lines, expected, trace_dir))
    with open(out_path, "w") as f:
        json.dump(report, f, indent=2, sort_keys=False)
        f.write("\n")
    print(f"wrote {out_path}")
    return report


def test_recovery_bench():
    """Pytest entry point: quick mode, shape + invariant assertions."""
    report = run_bench(quick=True, out_path=DEFAULT_OUT)
    assert report["runs"]
    for entry in report["runs"]:
        assert entry["surgical"]["restarts"] == 0
        assert entry["surgical"]["respawns"] >= 1
        assert entry["whole_job"]["restarts"] >= 1
        # surgical replays one rank, the restart re-runs everything: its
        # wasted-work ratio must be strictly higher
        assert (entry["whole_job"]["wasted_work_ratio"]
                > entry["surgical"]["wasted_work_ratio"])


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--out", default=DEFAULT_OUT)
    parser.add_argument("--trace-dir", default=None)
    args = parser.parse_args()
    run_bench(quick=args.quick, out_path=args.out, trace_dir=args.trace_dir)
