"""Figure 1(b): Hadoop RPC vs DataMPI RPC latency, 1 B - 4 KB payloads.

Paper claims: DataMPI RPC is better than Hadoop RPC by up to 18% on
1GigE, 32% on 10GigE and 55% on IB.  The functional RPC engines are also
exercised to show the modelled systems really run.
"""

from repro.net.fabric import FABRICS, GIGE1, GIGE10, IB_16G
from repro.net.latency import PAYLOAD_SIZES, max_improvement, rpc_latency_comparison

from conftest import table


def test_fig01b_rpc_latency_model(benchmark, emit):
    def run():
        return {name: rpc_latency_comparison(f) for name, f in FABRICS.items()}

    curves = benchmark.pedantic(run, rounds=1, iterations=1)

    sections = []
    for fabric_name, by_system in curves.items():
        rows = []
        for (p, h), (_, d) in zip(by_system["Hadoop"], by_system["DataMPI"]):
            rows.append(
                [p, f"{h * 1e6:.1f}", f"{d * 1e6:.1f}", f"{(h - d) / h * 100:.1f}%"]
            )
        sections.append(
            f"-- {fabric_name} --\n"
            + table(["payload(B)", "Hadoop(us)", "DataMPI(us)", "improv"], rows)
        )
    improvements = {name: max_improvement(f) for name, f in FABRICS.items()}
    text = "\n\n".join(sections)
    text += "\n\nmax improvements: " + ", ".join(
        f"{k}: {v:.1f}%" for k, v in improvements.items()
    )
    text += "\npaper: up to 18% (1GigE), 32% (10GigE), 55% (IB)"
    emit("fig01b_rpc_latency", text)

    assert 10 < improvements["1GigE"] < 28
    assert 20 < improvements["10GigE"] < 40
    assert 45 < improvements["IB (16Gbps)"] < 65
    assert (
        improvements["1GigE"]
        < improvements["10GigE"]
        < improvements["IB (16Gbps)"]
    )


def test_fig01b_functional_rpc_roundtrip(benchmark):
    """Measure the *real* in-process RPC engines on the same frames."""
    from repro.rpc.client import HadoopRpcClient
    from repro.rpc.server import HadoopRpcServer

    server = HadoopRpcServer({"echo": lambda x: x}, num_handlers=2).start()
    client = HadoopRpcClient(server)
    payload = b"x" * 1024

    def call():
        return client.call("echo", payload)

    result = benchmark(call)
    assert result == payload
    server.stop()
