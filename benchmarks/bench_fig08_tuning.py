"""Figure 8: parameter tuning — HDFS block size and A/reduce task count.

Paper claims: both frameworks peak at a 256 MB block size (Fig 8a) and
at 4 concurrent A/reduce tasks per node (Fig 8b) on Testbed A.
"""

from repro.simulate.figures import GB, fig8a_block_size_sweep, fig8b_task_sweep

from conftest import table


def test_fig08a_block_size(benchmark, emit):
    sweep = benchmark.pedantic(
        fig8a_block_size_sweep,
        kwargs=dict(data_bytes=96 * GB),
        rounds=1,
        iterations=1,
    )
    rows = [
        [mb, f"{sweep[mb]['Hadoop']:.0f}", f"{sweep[mb]['DataMPI']:.0f}"]
        for mb in sweep
    ]
    text = table(["block(MB)", "Hadoop(MB/s)", "DataMPI(MB/s)"], rows)
    text += "\npaper: both achieve best throughput at 256 MB (96 GB TeraSort)"
    emit("fig08a_block_size_tuning", text)

    hadoop = {mb: sweep[mb]["Hadoop"] for mb in sweep}
    datampi = {mb: sweep[mb]["DataMPI"] for mb in sweep}
    assert max(hadoop, key=hadoop.get) == 256
    # DataMPI's curve is flat near the top; 256 is within 2% of its max
    assert datampi[256] > 0.98 * max(datampi.values())
    assert datampi[256] > datampi[64] and datampi[256] > datampi[1024]


def test_fig08b_task_count(benchmark, emit):
    sweep = benchmark.pedantic(fig8b_task_sweep, rounds=1, iterations=1)
    rows = [
        [k, f"{sweep[k]['Hadoop']:.0f}", f"{sweep[k]['DataMPI']:.0f}"]
        for k in sweep
    ]
    text = table(["A tasks/node", "Hadoop(MB/s)", "DataMPI(MB/s)"], rows)
    text += "\npaper: best throughput at 4 concurrent A/reduce tasks per node"
    emit("fig08b_task_count_tuning", text)

    hadoop = {k: sweep[k]["Hadoop"] for k in sweep}
    assert max(hadoop, key=hadoop.get) == 4
    datampi = {k: sweep[k]["DataMPI"] for k in sweep}
    assert datampi[4] > datampi[2]
    # diminishing/negative returns past 4 (cache pressure spills)
    assert datampi[8] - datampi[4] < 0.5 * (datampi[4] - datampi[2])
