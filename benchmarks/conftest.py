"""Shared helpers for the figure-reproduction benchmark harness.

Every ``bench_figNN_*.py`` regenerates one table/figure of the paper's
evaluation: it runs the models, prints the same rows/series the paper
reports (visible with ``pytest benchmarks/ --benchmark-only -s``), writes
them to ``benchmarks/results/``, and asserts the headline shape so a
regression cannot slip through silently.
"""

from __future__ import annotations

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(scope="session")
def results_dir() -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def emit(results_dir, request):
    """Print a figure table and persist it under benchmarks/results/."""

    def _emit(name: str, text: str) -> None:
        banner = f"\n{'=' * 72}\n{name}\n{'=' * 72}\n{text}\n"
        print(banner)
        path = os.path.join(results_dir, f"{name}.txt")
        with open(path, "w") as f:
            f.write(text + "\n")

    return _emit


def improvement(hadoop: float, datampi: float) -> float:
    return (hadoop - datampi) / hadoop * 100.0


def table(header: list[str], rows: list[list]) -> str:
    """Fixed-width text table."""
    widths = [
        max(len(str(header[i])), max((len(str(r[i])) for r in rows), default=0))
        for i in range(len(header))
    ]
    def fmt(row):
        return "  ".join(str(cell).rjust(widths[i]) for i, cell in enumerate(row))

    lines = [fmt(header), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)
