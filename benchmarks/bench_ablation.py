"""Ablation study: which DataMPI mechanism buys how much?

Not a paper figure — DESIGN.md calls out the design choices §IV credits
for the speedup; this bench removes them one at a time from the
simulated 96 GB TeraSort (Testbed A) and measures the slowdown:

* O-side pipelined shuffle (communication overlapped with compute),
* data-centric A scheduling (reduce-side locality),
* in-memory intermediate caching (vs full spill),
* persistent processes (vs JVM-per-task + job overhead),

and finally applies *all* ablations together, which should land in the
neighbourhood of the real Hadoop model — evidence the two models differ
by mechanisms, not by fudge factors.
"""

from dataclasses import replace

from repro.common.units import MiB
from repro.simulate.cluster import TESTBED_A, SimCluster
from repro.simulate.datampi_model import DataMPISimParams, simulate_datampi_job
from repro.simulate.hadoop_model import HadoopSimParams, simulate_hadoop_job
from repro.simulate.profiles import DATAMPI_CONSTANTS, HADOOP_CONSTANTS, TERASORT

from conftest import table

DATA = 96e9
TASKS = TESTBED_A.num_slaves * TESTBED_A.reduce_slots

#: DataMPI constants with Hadoop's process model (JVM per task, heavier
#: job submission) — the "no persistent processes" ablation
_JVM_CONSTANTS = replace(
    DATAMPI_CONSTANTS,
    task_startup=HADOOP_CONSTANTS.task_startup,
    job_overhead=HADOOP_CONSTANTS.job_overhead,
)


def _run(name: str, **kwargs) -> float:
    params = DataMPISimParams(
        TERASORT, DATA, 256 * MiB, num_a_tasks=TASKS, name=name, **kwargs
    )
    report = simulate_datampi_job(
        SimCluster(TESTBED_A), params, profile_resources=False
    )
    return report.duration


def test_ablation_decomposition(benchmark, emit):
    def run_all():
        return {
            "full DataMPI": _run("base"),
            "- O-side pipelining": _run("no-pipe", pipelined_shuffle=False),
            "- data-local A tasks": _run("no-local", data_local_a=False),
            "- in-memory caching": _run("no-cache", cache_fraction=0.0),
            "- persistent processes": _run("jvm", constants=_JVM_CONSTANTS),
            "all ablations": _run(
                "all",
                pipelined_shuffle=False,
                data_local_a=False,
                cache_fraction=0.0,
                constants=_JVM_CONSTANTS,
            ),
        }

    durations = benchmark.pedantic(run_all, rounds=1, iterations=1)
    hadoop = simulate_hadoop_job(
        SimCluster(TESTBED_A),
        HadoopSimParams(TERASORT, DATA, 256 * MiB, TASKS, name="hadoop"),
        profile_resources=False,
    ).duration

    base = durations["full DataMPI"]
    rows = [
        [variant, f"{duration:.0f}",
         f"{(duration - base) / base * 100:+.1f}%"]
        for variant, duration in durations.items()
    ]
    rows.append(["(real Hadoop model)", f"{hadoop:.0f}",
                 f"{(hadoop - base) / base * 100:+.1f}%"])
    text = table(["variant", "time(s)", "vs full DataMPI"], rows)
    text += (
        "\n\nnote: at this scale the A phase is disk-write-bound, so the"
        "\ndata-locality ablation costs little in isolation — the paper's"
        "\ngains stack from caching + pipelining + lean processes."
    )
    emit("ablation_decomposition", text)

    # every ablation costs something
    for variant, duration in durations.items():
        if variant != "full DataMPI":
            assert duration > base, variant
    # stacking all ablations closes most of the gap to real Hadoop: the
    # combined variant lands in Hadoop's neighbourhood, not DataMPI's
    combined = durations["all ablations"]
    assert combined > base * 1.3
    assert combined > (base + hadoop) / 2 * 0.75
