"""Rank-backend comparison: threads vs. process-per-rank, real jobs.

The thread backend serializes all rank compute behind the GIL; the
process backend (``mpi.d.launcher=processes``) buys real parallelism at
the price of pickling envelopes through the driver-side socket router.
This bench quantifies that trade on two paper workloads:

* **WordCount (CPU-bound)** — the mapper hashes every token, so O-task
  compute dominates shuffle volume.  This is the backend's best case:
  with enough cores the process backend must win.
* **TeraSort** — shuffle-heavy fixed-length records.  Wire pickling and
  router forwarding show up here; the interesting number is how much of
  the thread backend's throughput survives the process boundary.

Writes ``BENCH_BACKENDS.json`` at the repo root: wall time, speedup and
the per-phase breakdown (compute/communicate/sort/merge) from the job
metrics, per workload and process count.

The >=1.5x CPU-bound WordCount speedup is asserted only when the
machine actually has >= 4 cores — on smaller boxes (CI sandboxes, this
container) the numbers are still recorded, flagged ``cpu_limited``.

Run standalone (preferred for stable numbers)::

    PYTHONPATH=src python benchmarks/bench_backends.py [--quick] [--out PATH]

or under pytest (quick mode, shape assertions only)::

    PYTHONPATH=src python -m pytest benchmarks/bench_backends.py -s
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import platform
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(REPO_ROOT, "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.core import FileSink, mapreduce_job, mpidrun  # noqa: E402
from repro.core.constants import MPI_D_Constants as K  # noqa: E402
from repro.hdfs.cluster import MiniDFSCluster  # noqa: E402
from repro.workloads.teragen import RECORD_LEN, teragen_to_dfs  # noqa: E402
from repro.workloads.terasort import terasort_datampi, verify_terasort_output  # noqa: E402
from repro.workloads.wordcount import generate_text, wordcount_reference  # noqa: E402

DEFAULT_OUT = os.path.join(REPO_ROOT, "BENCH_BACKENDS.json")

#: hash rounds per token — makes the WordCount mapper CPU-bound so the
#: backends differ by compute parallelism, not shuffle plumbing; sized so
#: even quick mode runs a couple of seconds of compute, enough to
#: amortize process startup and router pickling on a small-core machine
HASH_ROUNDS = 200

LAUNCHERS = ("threads", "processes")

#: phase keys reported in the per-phase breakdown
PHASES = ("compute", "communicate", "sort", "merge", "checkpoint")


def _cpu_mapper(_key, line, emit):
    for word in line.split():
        digest = word.encode()
        for _ in range(HASH_ROUNDS):
            digest = hashlib.sha256(digest).digest()
        emit(word, 1)


def _reducer(word, counts, emit):
    emit(word, sum(counts))


def _combiner(word, counts):
    yield sum(counts)


def _phase_breakdown(result) -> dict:
    times = result.metrics.phase_times
    return {phase: round(times.get(phase, 0.0), 4) for phase in PHASES}


def bench_wordcount(nprocs: int, quick: bool) -> dict:
    """CPU-bound WordCount, both launchers, identical-output check."""
    lines = generate_text(1000 if quick else 4000, words_per_line=12)
    expected = wordcount_reference(lines)
    out: dict[str, dict] = {}
    merged: dict[str, dict] = {}
    for launcher in LAUNCHERS:
        sink = FileSink.temporary(f"bench-wc-{launcher}")

        def provider(rank, size, _lines=lines):
            for i, line in enumerate(_lines):
                if i % size == rank:
                    yield (i, line)

        job = mapreduce_job(
            f"bench-wc-{launcher}", provider, _cpu_mapper, _reducer, sink,
            o_tasks=nprocs, a_tasks=max(2, nprocs // 2),
            conf={K.LAUNCHER: launcher},
            combiner=_combiner,
        )
        t0 = time.perf_counter()
        result = mpidrun(job, nprocs=nprocs, timeout=600.0, raise_on_error=True)
        wall = time.perf_counter() - t0
        merged[launcher] = sink.merged()
        sink.cleanup()
        out[launcher] = {
            "wall_s": round(wall, 3),
            "phases": _phase_breakdown(result),
        }
    assert merged["threads"] == merged["processes"] == expected
    out["speedup"] = round(
        out["threads"]["wall_s"] / out["processes"]["wall_s"], 3
    )
    out["nprocs"] = nprocs
    return out


def bench_terasort(nprocs: int, quick: bool) -> dict:
    """Shuffle-heavy TeraSort, both launchers, global-order check."""
    records = 2000 if quick else 20000
    out: dict[str, dict] = {}
    for launcher in LAUNCHERS:
        cluster = MiniDFSCluster(num_nodes=4, block_size=250 * RECORD_LEN)
        teragen_to_dfs(cluster.client(0), "/tera/in", records)
        t0 = time.perf_counter()
        result = terasort_datampi(
            cluster, "/tera/in", "/tera/out", o_tasks=nprocs,
            a_tasks=nprocs, nprocs=nprocs, conf={K.LAUNCHER: launcher},
        )
        wall = time.perf_counter() - t0
        assert result.success
        assert verify_terasort_output(cluster.client(None), "/tera/out", records)
        out[launcher] = {
            "wall_s": round(wall, 3),
            "phases": _phase_breakdown(result),
        }
    out["speedup"] = round(
        out["threads"]["wall_s"] / out["processes"]["wall_s"], 3
    )
    out["nprocs"] = nprocs
    out["records"] = records
    return out


def run_bench(quick: bool, out_path: str) -> dict:
    cores = os.cpu_count() or 1
    cpu_limited = cores < 4
    nprocs_list = [4] if quick else [4, 8]
    report = {
        "bench": "backends",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": cores,
        "cpu_limited": cpu_limited,
        "quick": quick,
        "hash_rounds": HASH_ROUNDS,
        "wordcount": [],
        "terasort": [],
    }
    for nprocs in nprocs_list:
        wc = bench_wordcount(nprocs, quick)
        report["wordcount"].append(wc)
        print(
            f"wordcount np={nprocs}: threads {wc['threads']['wall_s']}s, "
            f"processes {wc['processes']['wall_s']}s, "
            f"speedup {wc['speedup']}x"
        )
        ts = bench_terasort(nprocs, quick)
        report["terasort"].append(ts)
        print(
            f"terasort  np={nprocs}: threads {ts['threads']['wall_s']}s, "
            f"processes {ts['processes']['wall_s']}s, "
            f"speedup {ts['speedup']}x"
        )
    with open(out_path, "w") as f:
        json.dump(report, f, indent=2, sort_keys=False)
        f.write("\n")
    print(f"wrote {out_path}")
    if not cpu_limited:
        best = max(entry["speedup"] for entry in report["wordcount"])
        assert best > 1.5, (
            f"CPU-bound WordCount speedup {best}x on {cores} cores — the "
            "process backend should beat the GIL by >1.5x at np>=4"
        )
    return report


def test_backends_bench():
    """Pytest entry point: quick mode, correctness + shape assertions."""
    report = run_bench(quick=True, out_path=DEFAULT_OUT)
    assert report["wordcount"] and report["terasort"]
    for entry in report["wordcount"] + report["terasort"]:
        for launcher in LAUNCHERS:
            assert entry[launcher]["wall_s"] > 0
            assert "compute" in entry[launcher]["phases"]


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--out", default=DEFAULT_OUT)
    run_bench(quick=parser.parse_args().quick,
              out_path=parser.parse_args().out)
