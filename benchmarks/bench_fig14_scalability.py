"""Figure 14: scalability on Testbed B (up to 64 slave nodes).

Paper claims: strong scale (256 GB fixed) — DataMPI reduces job time by
35-40%; weak scale (2 GB per A task) — both scale linearly and DataMPI
improves by ~40%.
"""

from repro.simulate.figures import GB, fig14a_strong_scale, fig14b_weak_scale

from conftest import improvement, table


def test_fig14a_strong_scale(benchmark, emit):
    sweep = benchmark.pedantic(
        fig14a_strong_scale,
        kwargs=dict(data_bytes=256 * GB, node_counts=(16, 32, 64)),
        rounds=1,
        iterations=1,
    )
    rows = [
        [n, f"{row['Hadoop']:.0f}", f"{row['DataMPI']:.0f}",
         f"{improvement(row['Hadoop'], row['DataMPI']):.1f}%"]
        for n, row in sweep.items()
    ]
    text = table(["nodes", "Hadoop(s)", "DataMPI(s)", "improv"], rows)
    text += "\npaper: 35-40% improvement, similar scaling trend (256 GB)"
    emit("fig14a_strong_scale", text)

    for n, row in sweep.items():
        gain = improvement(row["Hadoop"], row["DataMPI"])
        assert 25 < gain < 48, f"{n} nodes: {gain:.1f}%"
    for framework in ("Hadoop", "DataMPI"):
        times = [sweep[n][framework] for n in sorted(sweep)]
        assert times == sorted(times, reverse=True)  # more nodes, less time
        assert times[-1] < 0.35 * times[0]  # near-linear over 4x nodes


def test_fig14b_weak_scale(benchmark, emit):
    sweep = benchmark.pedantic(
        fig14b_weak_scale,
        kwargs=dict(per_task_bytes=2 * GB, node_counts=(16, 32, 64)),
        rounds=1,
        iterations=1,
    )
    rows = [
        [n, f"{row['Hadoop']:.0f}", f"{row['DataMPI']:.0f}",
         f"{improvement(row['Hadoop'], row['DataMPI']):.1f}%"]
        for n, row in sweep.items()
    ]
    text = table(["nodes", "Hadoop(s)", "DataMPI(s)", "improv"], rows)
    text += "\npaper: both scale linearly; DataMPI ~40% faster (2 GB/task)"
    emit("fig14b_weak_scale", text)

    datampi_times = [sweep[n]["DataMPI"] for n in sorted(sweep)]
    assert max(datampi_times) / min(datampi_times) < 1.15  # linear weak scale
    for n, row in sweep.items():
        gain = improvement(row["Hadoop"], row["DataMPI"])
        assert 20 < gain < 48, f"{n} nodes: {gain:.1f}%"
