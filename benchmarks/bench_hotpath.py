"""Hot-path microbenchmarks: p2p, shuffle, wire codec, RunStore throughput.

Unlike the figure benches (which reproduce the paper's *modelled*
numbers), this file measures the **real threaded runtime**: transport
matching latency, end-to-end shuffle records/s (object-tuple and
record-batch datapaths), the socket-backend wire hop (pickle envelope
vs. the FLAG_BATCH codec), and RunStore spill-and-merge throughput.
It writes ``BENCH_HOTPATH.json`` at the repo root so successive PRs
accumulate a perf trajectory.

Reading the two shuffle series honestly: on the *threads* backend the
object path moves tuples by reference — zero serialization — so sealing
record batches there costs extra CPU and the ``batch`` series trails
``objects``.  The bytes-first datapath pays off where serialization is
mandatory: the ``shuffle_wire`` series measures the process-backend wire
hop, where the batch codec replaces a per-record pickle with an O(1)
per-block byte copy and wins by several times at engine-default block
geometry.

Run standalone (preferred for stable numbers)::

    PYTHONPATH=src python benchmarks/bench_hotpath.py [--quick] [--out PATH]

or under pytest (quick mode, shape assertions only)::

    PYTHONPATH=src python -m pytest benchmarks/bench_hotpath.py -s
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(REPO_ROOT, "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.core.buffers import Block, SendPartitionList  # noqa: E402
from repro.core.partition import PartitionWindow  # noqa: E402
from repro.core.shuffle import PlaneConfig, ShuffleService  # noqa: E402
from repro.core.sorter import RunStore  # noqa: E402
from repro.mpi import run_world  # noqa: E402
from repro.net import wire  # noqa: E402
from repro.serde.batch import batch_from_pairs  # noqa: E402
from repro.serde.comparators import default_compare  # noqa: E402
from repro.serde.serialization import WritableSerializer  # noqa: E402

DEFAULT_OUT = os.path.join(REPO_ROOT, "BENCH_HOTPATH.json")


# -- p2p -----------------------------------------------------------------------
def bench_p2p(quick: bool) -> dict:
    """Ping-pong latency and one-way message throughput, 2 ranks."""
    rounds = 500 if quick else 3000
    burst = 2000 if quick else 20000
    payload = b"x" * 1024

    def main(comm):
        partner = 1 - comm.rank
        # latency: strict ping-pong
        comm.barrier()
        t0 = time.perf_counter()
        for _ in range(rounds):
            if comm.rank == 0:
                comm.send(payload, dest=partner, tag=1)
                comm.recv(source=partner, tag=1)
            else:
                comm.recv(source=partner, tag=1)
                comm.send(payload, dest=partner, tag=1)
        latency = time.perf_counter() - t0
        # throughput: rank 0 blasts, rank 1 drains (exact-match receive)
        comm.barrier()
        t0 = time.perf_counter()
        if comm.rank == 0:
            for i in range(burst):
                comm.send(payload, dest=1, tag=2)
            comm.recv(source=1, tag=3)  # ack
        else:
            for i in range(burst):
                comm.recv(source=0, tag=2)
            comm.send(None, dest=0, tag=3)
        burst_s = time.perf_counter() - t0
        return latency, burst_s

    results = run_world(2, main)
    latency_s = max(r[0] for r in results)
    burst_s = max(r[1] for r in results)
    return {
        "rounds": rounds,
        "burst_msgs": burst,
        "payload_bytes": len(payload),
        "latency_us_roundtrip": round(latency_s / rounds * 1e6, 2),
        "throughput_msgs_per_s": round(burst / burst_s),
    }


# -- shuffle -------------------------------------------------------------------
def _shuffle_config(num_partitions, num_processes, spill_dir, pipelined):
    return PlaneConfig(
        num_partitions=num_partitions,
        window=PartitionWindow(num_partitions, num_processes),
        cmp=None if pipelined else default_compare,
        serializer=WritableSerializer(),
        spill_dir=spill_dir,
        memory_budget=1 << 30,
        merge_threshold_blocks=64,
        pipelined=pipelined,
    )


def bench_shuffle(quick: bool, pipelined: bool, datapath: str = "objects") -> dict:
    """End-to-end shuffle records/s: SPL sealing, sender/receiver threads,
    many small blocks (the per-block-overhead regime the coalescing fast
    path targets).

    ``datapath="objects"`` ships tuple blocks (by reference on threads);
    ``datapath="batch"`` seals each block into a contiguous record batch,
    the representation the process backend forwards without pickling.
    """
    nprocs = 2
    records_per_rank = 4000 if quick else 40000
    flush_bytes = 512  # small blocks: per-envelope overhead dominates
    num_partitions = 2 * nprocs

    def main(comm):
        spill_dir = tempfile.mkdtemp(prefix="bench-shuffle-")
        service = ShuffleService(
            comm,
            lambda pid: _shuffle_config(
                num_partitions, comm.size, spill_dir, pipelined
            ),
        )
        plane = service.plane("fwd:0")
        spl = SendPartitionList(
            num_partitions,
            flush_bytes,
            cmp=None if pipelined else default_compare,
            serializer=WritableSerializer() if datapath == "batch" else None,
        )
        comm.barrier()
        t0 = time.perf_counter()
        for i in range(records_per_rank):
            block = spl.add(i % num_partitions, f"key-{i:08d}", i)
            if block is not None:
                service.send_block("fwd:0", block)
        for block in spl.flush_all():
            service.send_block("fwd:0", block)
        service.send_eos("fwd:0")
        if pipelined:
            consumed = 0
            for p in plane.rpls:
                for _ in plane.stream_iter(p):
                    consumed += 1
        else:
            plane.wait_complete(120)
            consumed = 0
            for p in plane.rpls:
                for _ in plane.merged_iter(p):
                    consumed += 1
        elapsed = time.perf_counter() - t0
        comm.barrier()
        stats = service.stats()
        service.shutdown()
        return elapsed, consumed, stats

    results = run_world(nprocs, main)
    elapsed = max(r[0] for r in results)
    consumed = sum(r[1] for r in results)
    total_records = records_per_rank * nprocs
    assert consumed == total_records, (consumed, total_records)
    return {
        "mode": "streaming" if pipelined else "mapreduce",
        "datapath": datapath,
        "nprocs": nprocs,
        "records": total_records,
        "flush_bytes": flush_bytes,
        "blocks_sent": sum(r[2]["blocks_sent"] for r in results),
        "records_per_s": round(total_records / elapsed),
        "elapsed_s": round(elapsed, 3),
    }


def bench_shuffle_datapaths(quick: bool, pipelined: bool) -> dict:
    """Both shuffle datapaths side by side, with the honest caveat."""
    objects = bench_shuffle(quick, pipelined, datapath="objects")
    batch = bench_shuffle(quick, pipelined, datapath="batch")
    return {
        "objects": objects,
        "batch": batch,
        "batch_vs_objects": round(
            batch["records_per_s"] / objects["records_per_s"], 3
        ),
        "note": (
            "threads backend: object blocks travel by reference (no serde), "
            "so batch sealing is pure overhead here; see shuffle_wire for "
            "the hop where bytes-first wins"
        ),
    }


# -- wire datapath -------------------------------------------------------------
def bench_shuffle_wire(quick: bool) -> dict:
    """Process-backend wire hop: one coalesced shuffle envelope encoded and
    decoded per iteration.

    Object path = what the socket backend did before the bytes-first
    datapath: ``WIRE_SERDE.dumps``/``loads`` of the ``("batch", ...)``
    message with tuple-record blocks — a pickle call per envelope that
    walks every record.  Bytes path = the FLAG_BATCH codec: sealed batch
    bytes are copied verbatim into the frame body and sliced back out as
    memoryviews, O(1) per block regardless of record count.

    Geometry matches the engine defaults: 32 KiB SPL flush (~320
    terasort-shaped 100 B records per block), 256 KiB sender coalescing
    (8 blocks per envelope).
    """
    records_per_block = 320  # 32 KiB flush / 100 B records
    blocks_per_env = 8  # 256 KiB coalescing cap
    iters = 100 if quick else 1000
    serializer = WritableSerializer()

    def terasort_pairs(n, base):
        return [
            (b"%010d" % ((base + i) * 2654435761 % 10**10), b"v" * 90)
            for i in range(n)
        ]

    def wordcount_pairs(n, base):
        return [("word%06d" % ((base + i) % 5000), 1) for i in range(n)]

    def one_series(pairs_fn, raw, ser):
        nbytes = records_per_block * 100
        obj_msg = (
            "batch",
            "fwd:0",
            (
                0,
                0,
                [
                    Block(p, tuple(pairs_fn(records_per_block, p * 1000)), nbytes, True)
                    for p in range(blocks_per_env)
                ],
                False,
            ),
        )
        batch_msg = (
            "batch",
            "fwd:0",
            (
                0,
                0,
                [
                    Block(
                        p,
                        batch_from_pairs(
                            pairs_fn(records_per_block, p * 1000), ser, raw=raw
                        ),
                        nbytes,
                        True,
                    )
                    for p in range(blocks_per_env)
                ],
                False,
            ),
        )
        records = records_per_block * blocks_per_env * iters
        t0 = time.perf_counter()
        for _ in range(iters):
            wire.WIRE_SERDE.loads(wire.WIRE_SERDE.dumps(obj_msg))
        pickle_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        for _ in range(iters):
            body, flags = wire.encode_payload(batch_msg)
            wire.decode_payload(body, flags)
        codec_s = time.perf_counter() - t0
        assert flags & wire.FLAG_BATCH
        return {
            "object_path_records_per_s": round(records / pickle_s),
            "bytes_path_records_per_s": round(records / codec_s),
            "speedup": round(pickle_s / codec_s, 2),
        }

    report = {
        "records_per_block": records_per_block,
        "blocks_per_envelope": blocks_per_env,
        "envelopes": iters,
        "terasort_raw": one_series(terasort_pairs, True, None),
        "wordcount_serialized": one_series(wordcount_pairs, False, serializer),
    }
    return report


# -- RunStore ------------------------------------------------------------------
def bench_runstore(quick: bool) -> dict:
    """Spill + k-way merge throughput with a deliberately tight budget."""
    runs = 40 if quick else 120
    run_len = 500 if quick else 1500
    store = RunStore(
        default_compare,
        WritableSerializer(),
        tempfile.mkdtemp(prefix="bench-runstore-"),
        memory_budget=64 * 1024,  # forces most runs to disk
        compress_spills=True,
    )
    total = runs * run_len
    t0 = time.perf_counter()
    for r in range(runs):
        run = [(f"k{r:04d}-{i:06d}", "v" * 16) for i in range(run_len)]
        store.add_run(run)
    spill_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    merged = sum(1 for _ in store)
    merge_s = time.perf_counter() - t0
    store.cleanup()
    assert merged == total, (merged, total)
    return {
        "runs": runs,
        "records": total,
        "spilled_bytes": store.spilled_bytes,
        "spill_records_per_s": round(total / spill_s),
        "merge_records_per_s": round(total / merge_s),
    }


def run_all(quick: bool) -> dict:
    report = {
        "meta": {
            "quick": quick,
            "python": platform.python_version(),
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        },
        "p2p": bench_p2p(quick),
        "shuffle": bench_shuffle_datapaths(quick, pipelined=False),
        "shuffle_streaming": bench_shuffle_datapaths(quick, pipelined=True),
        "shuffle_wire": bench_shuffle_wire(quick),
        "runstore": bench_runstore(quick),
    }
    for series in ("terasort_raw", "wordcount_serialized"):
        speedup = report["shuffle_wire"][series]["speedup"]
        assert speedup >= 2.0, (
            f"bytes-path wire codec only {speedup}x over the pickle envelope "
            f"({series}) — the FLAG_BATCH fast path has regressed"
        )
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI smoke sizes")
    parser.add_argument("--out", default=DEFAULT_OUT, help="JSON output path")
    args = parser.parse_args(argv)
    report = run_all(args.quick)
    with open(args.out, "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")
    print(json.dumps(report, indent=2))
    print(f"\nwrote {args.out}")
    return 0


# -- pytest entry (quick mode, shape assertions only) ---------------------------
def test_bench_hotpath_quick(emit):
    report = run_all(quick=True)
    emit("hotpath", json.dumps(report, indent=2))
    assert report["p2p"]["throughput_msgs_per_s"] > 0
    for series in ("shuffle", "shuffle_streaming"):
        assert report[series]["objects"]["records_per_s"] > 0
        assert report[series]["batch"]["records_per_s"] > 0
    wire_series = report["shuffle_wire"]
    assert wire_series["terasort_raw"]["speedup"] >= 2.0
    assert wire_series["wordcount_serialized"]["speedup"] >= 2.0
    assert report["runstore"]["merge_records_per_s"] > 0


if __name__ == "__main__":
    sys.exit(main())
