"""Hot-path microbenchmarks: p2p, shuffle, and RunStore throughput.

Unlike the figure benches (which reproduce the paper's *modelled*
numbers), this file measures the **real threaded runtime**: transport
matching latency, end-to-end shuffle records/s, and RunStore
spill-and-merge throughput.  It writes ``BENCH_HOTPATH.json`` at the
repo root so successive PRs accumulate a perf trajectory.

Run standalone (preferred for stable numbers)::

    PYTHONPATH=src python benchmarks/bench_hotpath.py [--quick] [--out PATH]

or under pytest (quick mode, shape assertions only)::

    PYTHONPATH=src python -m pytest benchmarks/bench_hotpath.py -s
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(REPO_ROOT, "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.core.buffers import SendPartitionList  # noqa: E402
from repro.core.partition import PartitionWindow  # noqa: E402
from repro.core.shuffle import PlaneConfig, ShuffleService  # noqa: E402
from repro.core.sorter import RunStore  # noqa: E402
from repro.mpi import run_world  # noqa: E402
from repro.serde.comparators import default_compare  # noqa: E402
from repro.serde.serialization import WritableSerializer  # noqa: E402

DEFAULT_OUT = os.path.join(REPO_ROOT, "BENCH_HOTPATH.json")


# -- p2p -----------------------------------------------------------------------
def bench_p2p(quick: bool) -> dict:
    """Ping-pong latency and one-way message throughput, 2 ranks."""
    rounds = 500 if quick else 3000
    burst = 2000 if quick else 20000
    payload = b"x" * 1024

    def main(comm):
        partner = 1 - comm.rank
        # latency: strict ping-pong
        comm.barrier()
        t0 = time.perf_counter()
        for _ in range(rounds):
            if comm.rank == 0:
                comm.send(payload, dest=partner, tag=1)
                comm.recv(source=partner, tag=1)
            else:
                comm.recv(source=partner, tag=1)
                comm.send(payload, dest=partner, tag=1)
        latency = time.perf_counter() - t0
        # throughput: rank 0 blasts, rank 1 drains (exact-match receive)
        comm.barrier()
        t0 = time.perf_counter()
        if comm.rank == 0:
            for i in range(burst):
                comm.send(payload, dest=1, tag=2)
            comm.recv(source=1, tag=3)  # ack
        else:
            for i in range(burst):
                comm.recv(source=0, tag=2)
            comm.send(None, dest=0, tag=3)
        burst_s = time.perf_counter() - t0
        return latency, burst_s

    results = run_world(2, main)
    latency_s = max(r[0] for r in results)
    burst_s = max(r[1] for r in results)
    return {
        "rounds": rounds,
        "burst_msgs": burst,
        "payload_bytes": len(payload),
        "latency_us_roundtrip": round(latency_s / rounds * 1e6, 2),
        "throughput_msgs_per_s": round(burst / burst_s),
    }


# -- shuffle -------------------------------------------------------------------
def _shuffle_config(num_partitions, num_processes, spill_dir, pipelined):
    return PlaneConfig(
        num_partitions=num_partitions,
        window=PartitionWindow(num_partitions, num_processes),
        cmp=None if pipelined else default_compare,
        serializer=WritableSerializer(),
        spill_dir=spill_dir,
        memory_budget=1 << 30,
        merge_threshold_blocks=64,
        pipelined=pipelined,
    )


def bench_shuffle(quick: bool, pipelined: bool) -> dict:
    """End-to-end shuffle records/s: SPL sealing, sender/receiver threads,
    many small blocks (the per-block-overhead regime the coalescing fast
    path targets)."""
    nprocs = 2
    records_per_rank = 4000 if quick else 40000
    flush_bytes = 512  # small blocks: per-envelope overhead dominates
    num_partitions = 2 * nprocs

    def main(comm):
        spill_dir = tempfile.mkdtemp(prefix="bench-shuffle-")
        service = ShuffleService(
            comm,
            lambda pid: _shuffle_config(
                num_partitions, comm.size, spill_dir, pipelined
            ),
        )
        plane = service.plane("fwd:0")
        spl = SendPartitionList(
            num_partitions, flush_bytes, cmp=None if pipelined else default_compare
        )
        comm.barrier()
        t0 = time.perf_counter()
        for i in range(records_per_rank):
            block = spl.add(i % num_partitions, f"key-{i:08d}", i)
            if block is not None:
                service.send_block("fwd:0", block)
        for block in spl.flush_all():
            service.send_block("fwd:0", block)
        service.send_eos("fwd:0")
        if pipelined:
            consumed = 0
            for p in plane.rpls:
                for _ in plane.stream_iter(p):
                    consumed += 1
        else:
            plane.wait_complete(120)
            consumed = 0
            for p in plane.rpls:
                for _ in plane.merged_iter(p):
                    consumed += 1
        elapsed = time.perf_counter() - t0
        comm.barrier()
        stats = service.stats()
        service.shutdown()
        return elapsed, consumed, stats

    results = run_world(nprocs, main)
    elapsed = max(r[0] for r in results)
    consumed = sum(r[1] for r in results)
    total_records = records_per_rank * nprocs
    assert consumed == total_records, (consumed, total_records)
    return {
        "mode": "streaming" if pipelined else "mapreduce",
        "nprocs": nprocs,
        "records": total_records,
        "flush_bytes": flush_bytes,
        "blocks_sent": sum(r[2]["blocks_sent"] for r in results),
        "records_per_s": round(total_records / elapsed),
        "elapsed_s": round(elapsed, 3),
    }


# -- RunStore ------------------------------------------------------------------
def bench_runstore(quick: bool) -> dict:
    """Spill + k-way merge throughput with a deliberately tight budget."""
    runs = 40 if quick else 120
    run_len = 500 if quick else 1500
    store = RunStore(
        default_compare,
        WritableSerializer(),
        tempfile.mkdtemp(prefix="bench-runstore-"),
        memory_budget=64 * 1024,  # forces most runs to disk
        compress_spills=True,
    )
    total = runs * run_len
    t0 = time.perf_counter()
    for r in range(runs):
        run = [(f"k{r:04d}-{i:06d}", "v" * 16) for i in range(run_len)]
        store.add_run(run)
    spill_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    merged = sum(1 for _ in store)
    merge_s = time.perf_counter() - t0
    store.cleanup()
    assert merged == total, (merged, total)
    return {
        "runs": runs,
        "records": total,
        "spilled_bytes": store.spilled_bytes,
        "spill_records_per_s": round(total / spill_s),
        "merge_records_per_s": round(total / merge_s),
    }


def run_all(quick: bool) -> dict:
    report = {
        "meta": {
            "quick": quick,
            "python": platform.python_version(),
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        },
        "p2p": bench_p2p(quick),
        "shuffle": bench_shuffle(quick, pipelined=False),
        "shuffle_streaming": bench_shuffle(quick, pipelined=True),
        "runstore": bench_runstore(quick),
    }
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI smoke sizes")
    parser.add_argument("--out", default=DEFAULT_OUT, help="JSON output path")
    args = parser.parse_args(argv)
    report = run_all(args.quick)
    with open(args.out, "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")
    print(json.dumps(report, indent=2))
    print(f"\nwrote {args.out}")
    return 0


# -- pytest entry (quick mode, shape assertions only) ---------------------------
def test_bench_hotpath_quick(emit):
    report = run_all(quick=True)
    emit("hotpath", json.dumps(report, indent=2))
    assert report["p2p"]["throughput_msgs_per_s"] > 0
    assert report["shuffle"]["records_per_s"] > 0
    assert report["shuffle_streaming"]["records_per_s"] > 0
    assert report["runstore"]["merge_records_per_s"] > 0


if __name__ == "__main__":
    sys.exit(main())
