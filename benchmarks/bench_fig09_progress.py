"""Figure 9: progress of the 168 GB TeraSort on Testbed A.

Paper claims: Hadoop requires 475 s, DataMPI 312 s, and DataMPI improves
both the O (map) and A (reduce) phases.
"""

from repro.simulate.figures import GB, fig9_progress

from conftest import improvement, table


def _progress_rows(report, phases, step=0.25):
    rows = []
    for phase in phases:
        series = report.progress[phase]
        for target in (0.25, 0.5, 0.75, 1.0):
            t = next(
                (t for t, v in zip(series.times, series.values) if v >= target),
                None,
            )
            rows.append([f"{report.framework} {phase}", f"{target:.0%}",
                         f"{t:.0f}s" if t is not None else "-"])
    return rows


def test_fig09_terasort_progress(benchmark, emit):
    reports = benchmark.pedantic(
        fig9_progress, kwargs=dict(data_bytes=168 * GB), rounds=1, iterations=1
    )
    hadoop, datampi = reports["Hadoop"], reports["DataMPI"]
    rows = _progress_rows(hadoop, ("map", "reduce"))
    rows += _progress_rows(datampi, ("O", "A"))
    text = table(["curve", "progress", "time"], rows)
    text += (
        f"\n\ntotal: Hadoop {hadoop.duration:.0f}s, DataMPI {datampi.duration:.0f}s"
        f" ({improvement(hadoop.duration, datampi.duration):.1f}% improvement)"
        "\npaper: Hadoop 475 s, DataMPI 312 s (34.3%)"
    )
    emit("fig09_terasort_progress", text)

    assert abs(hadoop.duration - 475) / 475 < 0.20
    assert abs(datampi.duration - 312) / 312 < 0.15
    assert 30 < improvement(hadoop.duration, datampi.duration) < 44
    # both phases improve (§V-C)
    assert datampi.phase_duration("O") < hadoop.phase_duration("map")
