"""Figure 13: fault tolerance efficiency (100 GB TeraSort, 10 slaves).

Paper claims: checkpoint-enabled DataMPI loses ~12% vs default but still
beats Hadoop by 21%; job restart costs under 3 s; checkpoint reload time
grows proportionally with the persisted data; totals rise only slightly.
The functional engine's crash/restart path is exercised too.
"""

from repro.simulate.figures import fig13_recovery, fig13a_ft_efficiency

from conftest import improvement, table


def test_fig13a_checkpoint_efficiency(benchmark, emit):
    result = benchmark.pedantic(fig13a_ft_efficiency, rounds=1, iterations=1)
    ft_loss = improvement(result["DataMPI-FT"], result["DataMPI"])
    vs_hadoop = improvement(result["Hadoop"], result["DataMPI-FT"])
    recoveries = {f: fig13_recovery(f) for f in (0.2, 0.4, 0.6, 0.8, 1.0)}
    rows = [
        [f"{frac:.0%}", f"{r.normal_before_crash:.0f}", f"{r.job_restart:.1f}",
         f"{r.checkpoint_reload:.1f}", f"{r.normal_after_recover:.0f}",
         f"{r.total:.0f}"]
        for frac, r in recoveries.items()
    ]
    text = table(
        ["checkpointed", "before crash", "restart", "reload", "after", "total"],
        rows,
    )
    text += (
        f"\n\nDataMPI {result['DataMPI']:.0f}s | DataMPI-FT"
        f" {result['DataMPI-FT']:.0f}s (-{ft_loss:.1f}%) | Hadoop"
        f" {result['Hadoop']:.0f}s (FT still {vs_hadoop:.1f}% faster)"
        "\npaper: ~12% FT overhead; 21% faster than Hadoop; restart < 3 s"
    )
    emit("fig13_fault_tolerance", text)

    assert 5 < -(-ft_loss) < 25  # checkpoint overhead band
    assert vs_hadoop > 15
    assert all(r.job_restart < 3.0 for r in recoveries.values())
    reloads = [recoveries[f].checkpoint_reload for f in sorted(recoveries)]
    assert reloads == sorted(reloads)
    totals = [recoveries[f].total for f in sorted(recoveries)]
    assert totals == sorted(totals)
    assert totals[-1] < 1.5 * totals[0]  # "a slight augment"


def test_fig13_functional_crash_recovery(benchmark):
    """Real engine: crash mid-job, restart, verify identical output."""
    import tempfile

    from repro.core import mapreduce_job, mpidrun
    from repro.core.constants import MPI_D_Constants as K

    ftdir = tempfile.mkdtemp(prefix="bench-ft-")

    def make_job(out, crash_after):
        def provider(rank, size):
            for i in range(rank, 400, size):
                yield (i, i)

        conf = {
            K.FT_ENABLED: True, K.FT_DIR: ftdir, K.JOB_ID: "bench-ft",
            K.FT_INTERVAL_RECORDS: 20,
            K.INJECT_CRASH_AFTER_RECORDS: crash_after,
            K.INJECT_CRASH_TASK: 1,
        }
        return mapreduce_job(
            "bench-ft", provider,
            lambda k, v, emit: emit(str(v % 11), v),
            lambda k, vs, emit: emit(k, sum(vs)),
            lambda rank, k, v: out.__setitem__(k, v),
            o_tasks=4, a_tasks=2, conf=conf,
        )

    def crash_and_recover():
        crashed = {}
        assert not mpidrun(make_job(crashed, 30), nprocs=2).success
        recovered = {}
        result = mpidrun(make_job(recovered, -1), nprocs=2, raise_on_error=True)
        return result, recovered

    result, recovered = benchmark.pedantic(crash_and_recover, rounds=1, iterations=1)
    assert result.success
    assert result.metrics.reloaded_records > 0
    expected = {}
    for i in range(400):
        key = str(i % 11)
        expected[key] = expected.get(key, 0) + i
    assert recovered == expected
