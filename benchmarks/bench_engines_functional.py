"""Functional-engine microbenchmarks (library-level, real execution).

Not a paper figure: these time the *actual* threaded DataMPI engine and
mini-Hadoop on identical small workloads, so regressions in the real
code paths (shuffle pipeline, sort/merge, serialization) show up in
``pytest-benchmark`` history.
"""

import pytest

from repro.hadoop import MiniHadoopCluster
from repro.hdfs import MiniDFSCluster
from repro.workloads import (
    generate_text,
    teragen_to_dfs,
    terasort_datampi,
    terasort_hadoop,
    verify_terasort_output,
    wordcount_datampi,
    wordcount_hadoop,
    wordcount_reference,
)
from repro.workloads.teragen import RECORD_LEN
from repro.workloads.wordcount import write_text_to_dfs

N_RECORDS = 2000


@pytest.fixture()
def tera_cluster():
    cluster = MiniDFSCluster(num_nodes=4, block_size=100 * RECORD_LEN)
    teragen_to_dfs(cluster.client(0), "/tera/in", N_RECORDS)
    return cluster


def test_engine_terasort_datampi(benchmark, tera_cluster):
    counter = iter(range(1000))

    def run():
        out = f"/tera/out-{next(counter)}"
        terasort_datampi(tera_cluster, "/tera/in", out, o_tasks=4, a_tasks=2,
                         nprocs=4)
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    assert verify_terasort_output(tera_cluster.client(None), out, N_RECORDS)


def test_engine_terasort_hadoop(benchmark, tera_cluster):
    hadoop = MiniHadoopCluster(tera_cluster)
    counter = iter(range(1000))

    def run():
        out = f"/tera/hout-{next(counter)}"
        terasort_hadoop(hadoop, "/tera/in", out, num_reduces=2)
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    assert verify_terasort_output(tera_cluster.client(None), out, N_RECORDS)


@pytest.fixture()
def text_cluster():
    lines = generate_text(300)
    cluster = MiniDFSCluster(num_nodes=3, block_size=2048)
    write_text_to_dfs(cluster.client(0), "/wc/in", lines)
    return cluster, lines


def test_engine_wordcount_datampi(benchmark, text_cluster):
    cluster, lines = text_cluster

    def run():
        _, counts = wordcount_datampi(cluster, "/wc/in", o_tasks=3, a_tasks=2,
                                      nprocs=3)
        return counts

    counts = benchmark.pedantic(run, rounds=1, iterations=1)
    assert counts == wordcount_reference(lines)


def test_engine_wordcount_hadoop(benchmark, text_cluster):
    cluster, lines = text_cluster
    hadoop = MiniHadoopCluster(cluster)
    counter = iter(range(1000))

    def run():
        _, counts = wordcount_hadoop(hadoop, "/wc/in", f"/wc/out-{next(counter)}", 2)
        return counts

    counts = benchmark.pedantic(run, rounds=1, iterations=1)
    assert counts == wordcount_reference(lines)


def test_engine_mpi_allreduce(benchmark):
    """Raw MPI substrate collective throughput."""
    from repro.mpi import SUM, run_world

    def run():
        return run_world(4, lambda comm: comm.allreduce(comm.rank, SUM))

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    assert results == [6, 6, 6, 6]


def test_engine_serialization_throughput(benchmark):
    """Writable wire-format encode/decode of 10k small records."""
    from repro.serde.io import DataInput, DataOutput
    from repro.serde.serialization import WritableSerializer

    serializer = WritableSerializer()
    records = [(f"key-{i}", i) for i in range(10_000)]

    def roundtrip():
        out = DataOutput()
        for k, v in records:
            serializer.serialize_kv(k, v, out)
        src = DataInput(out.getvalue())
        return [serializer.deserialize_kv(src) for _ in records]

    back = benchmark(roundtrip)
    assert back == records
