"""Perf-regression sentinel.

Re-runs the hot-path and observability-overhead benchmarks in quick mode
and compares the *scale-free* metrics against the committed baselines
(``BENCH_HOTPATH.json`` / ``BENCH_OBS.json``) with a tolerance band.
Scale-free means ratios and overhead percentages — numbers that survive
a move between machines.  Absolute throughputs and latencies are noise
on shared CI runners, so they are reported but never gated.

Gated metrics:

* ``shuffle_wire.terasort_raw.speedup`` and
  ``shuffle_wire.wordcount_serialized.speedup`` — the bytes-path wire
  codec must keep (most of) its committed advantage over the pickle
  envelope;
* ``disabled_overhead_pct_estimate`` — tracer guards on the disabled
  hot path;
* ``telemetry.default_overhead_pct`` — snapshot shipping at the default
  interval;
* ``profiler.default_overhead_pct`` — stack sampling at the default Hz.

A speedup may degrade by at most ``--tolerance`` (fractional, default
0.5 — quick-mode runs are small and shared runners are noisy).  The
overhead percentages are gated against the committed acceptance bar
(3%), not against their tiny baseline values: 0.005% → 0.05% is a 10x
"regression" that still costs nothing.

Run::

    PYTHONPATH=src python benchmarks/perf_sentinel.py [--tolerance F]
        [--fresh-dir DIR] [--skip-run]

``--fresh-dir`` keeps the freshly generated JSON files (for CI artifact
upload); ``--skip-run`` compares existing files in that directory
instead of re-running the benchmarks.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(REPO_ROOT, "src")
for p in (_SRC, os.path.dirname(os.path.abspath(__file__))):
    if p not in sys.path:
        sys.path.insert(0, p)

BASELINE_HOTPATH = os.path.join(REPO_ROOT, "BENCH_HOTPATH.json")
BASELINE_OBS = os.path.join(REPO_ROOT, "BENCH_OBS.json")


def _dig(tree: dict, path: str, default=None):
    node = tree
    for key in path.split("."):
        if not isinstance(node, dict) or key not in node:
            return default
        node = node[key]
    return node


def compare(baseline_hotpath: dict, baseline_obs: dict,
            fresh_hotpath: dict, fresh_obs: dict,
            tolerance: float) -> list[dict]:
    """Return one row per gated metric; row["ok"] is the verdict."""
    rows: list[dict] = []

    for path in ("shuffle_wire.terasort_raw.speedup",
                 "shuffle_wire.wordcount_serialized.speedup"):
        base = _dig(baseline_hotpath, path)
        fresh = _dig(fresh_hotpath, path)
        floor = None if base is None else round(base * (1.0 - tolerance), 2)
        rows.append({
            "metric": path, "kind": "speedup",
            "baseline": base, "fresh": fresh, "floor": floor,
            "ok": (base is not None and fresh is not None
                   and fresh >= floor),
        })

    bar = _dig(baseline_obs, "acceptance.bar_pct", 3.0)
    for path in ("disabled_overhead_pct_estimate",
                 "telemetry.default_overhead_pct",
                 "profiler.default_overhead_pct"):
        base = _dig(baseline_obs, path)
        fresh = _dig(fresh_obs, path)
        rows.append({
            "metric": path, "kind": "overhead_pct",
            "baseline": base, "fresh": fresh, "bar_pct": bar,
            "ok": fresh is not None and fresh < bar,
        })
    return rows


def render(rows: list[dict]) -> str:
    lines = []
    for row in rows:
        verdict = "ok  " if row["ok"] else "FAIL"
        if row["kind"] == "speedup":
            bound = f">= {row['floor']}"
        else:
            bound = f"< {row['bar_pct']}%"
        lines.append(
            f"  [{verdict}] {row['metric']}: fresh={row['fresh']} "
            f"(baseline={row['baseline']}, want {bound})"
        )
    return "\n".join(lines)


def _load(path: str) -> dict:
    with open(path) as f:
        return json.load(f)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tolerance", type=float, default=0.5,
                        help="allowed fractional speedup degradation")
    parser.add_argument("--fresh-dir", default=None,
                        help="directory for the fresh bench JSON files")
    parser.add_argument("--skip-run", action="store_true",
                        help="compare existing files in --fresh-dir")
    args = parser.parse_args(argv)

    fresh_dir = args.fresh_dir or os.path.join(REPO_ROOT, "benchmarks",
                                               "results")
    os.makedirs(fresh_dir, exist_ok=True)
    fresh_hotpath_path = os.path.join(fresh_dir, "fresh_hotpath.json")
    fresh_obs_path = os.path.join(fresh_dir, "fresh_obs.json")

    if args.skip_run:
        fresh_hotpath = _load(fresh_hotpath_path)
        fresh_obs = _load(fresh_obs_path)
    else:
        import bench_hotpath
        import bench_obs_overhead
        print("sentinel: running bench_hotpath (quick)...", flush=True)
        fresh_hotpath = bench_hotpath.run_all(quick=True)
        print("sentinel: running bench_obs_overhead (quick)...", flush=True)
        fresh_obs = bench_obs_overhead.run_all(quick=True)
        for path, report in ((fresh_hotpath_path, fresh_hotpath),
                             (fresh_obs_path, fresh_obs)):
            with open(path, "w") as f:
                json.dump(report, f, indent=2)
                f.write("\n")

    rows = compare(_load(BASELINE_HOTPATH), _load(BASELINE_OBS),
                   fresh_hotpath, fresh_obs, args.tolerance)
    print(f"perf sentinel (tolerance {args.tolerance:.0%}):")
    print(render(rows))
    failed = [row for row in rows if not row["ok"]]
    if failed:
        print(f"\n{len(failed)} metric(s) regressed beyond tolerance")
        return 1
    print("\nall gated metrics within tolerance")
    return 0


# -- pytest entry (pure comparison logic, no bench runs) ------------------------
def test_sentinel_compare_flags_regressions():
    base_hot = {"shuffle_wire": {
        "terasort_raw": {"speedup": 5.0},
        "wordcount_serialized": {"speedup": 7.0},
    }}
    base_obs = {
        "acceptance": {"bar_pct": 3.0},
        "disabled_overhead_pct_estimate": 0.05,
        "telemetry": {"default_overhead_pct": 0.005},
        "profiler": {"default_overhead_pct": 0.03},
    }
    good_hot = {"shuffle_wire": {
        "terasort_raw": {"speedup": 4.0},       # -20%, inside 50% band
        "wordcount_serialized": {"speedup": 8.0},
    }}
    good_obs = {
        "disabled_overhead_pct_estimate": 0.2,  # 4x baseline, under bar
        "telemetry": {"default_overhead_pct": 0.01},
        "profiler": {"default_overhead_pct": 0.06},
    }
    rows = compare(base_hot, base_obs, good_hot, good_obs, tolerance=0.5)
    assert all(row["ok"] for row in rows), render(rows)

    bad_hot = {"shuffle_wire": {
        "terasort_raw": {"speedup": 2.0},       # -60%, outside the band
        "wordcount_serialized": {"speedup": 7.0},
    }}
    bad_obs = dict(good_obs, profiler={"default_overhead_pct": 4.2})
    rows = compare(base_hot, base_obs, bad_hot, bad_obs, tolerance=0.5)
    failed = {row["metric"] for row in rows if not row["ok"]}
    assert failed == {"shuffle_wire.terasort_raw.speedup",
                      "profiler.default_overhead_pct"}


def test_sentinel_handles_missing_metrics():
    rows = compare({}, {}, {}, {}, tolerance=0.5)
    assert rows and not any(row["ok"] for row in rows)
    render(rows)  # must not raise on None values


if __name__ == "__main__":
    sys.exit(main())
