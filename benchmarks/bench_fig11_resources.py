"""Figure 11: resource utilization profiles of the 168 GB TeraSort.

Paper claims (Testbed A):
* (a) DataMPI's average CPU is lower, but its early CPU is higher;
* (b) DataMPI reads at 65.8 MB/s in the O phase vs Hadoop's 38.9 MB/s in
  the map phase (69% higher); DataMPI writes about half of Hadoop;
* (c) network: DataMPI 74.3 MB/s vs Hadoop 50.6 MB/s (47% higher),
  concentrated in the O phase;
* (d) memory: DataMPI 26.6 GB vs Hadoop 29.3 GB.
"""

from repro.simulate.figures import GB, active_mean, fig11_resource_profiles

from conftest import table


def test_fig11_resource_profiles(benchmark, emit):
    reports = benchmark.pedantic(
        fig11_resource_profiles, kwargs=dict(data_bytes=168 * GB),
        rounds=1, iterations=1,
    )
    hadoop, datampi = reports["Hadoop"], reports["DataMPI"]

    h_read = hadoop.mean_disk_read_rate("map") / 1e6
    d_read = datampi.mean_disk_read_rate("O") / 1e6
    h_net = active_mean(hadoop.net) / 1e6
    d_net = active_mean(datampi.net) / 1e6
    h_mem = hadoop.mem.max() / 1e9
    d_mem = datampi.mem.max() / 1e9
    h_cpu = hadoop.cpu_util.mean()
    d_cpu = datampi.cpu_util.mean()
    h_written = hadoop.disk_write.integral() * 16 / 1e9
    d_written = datampi.disk_write.integral() * 16 / 1e9

    rows = [
        ["disk read (MB/s, map/O)", f"{h_read:.1f}", f"{d_read:.1f}", "38.9 / 65.8"],
        ["disk written (GB total)", f"{h_written:.0f}", f"{d_written:.0f}",
         "DataMPI ~ half"],
        ["network (MB/s, active)", f"{h_net:.1f}", f"{d_net:.1f}", "50.6 / 74.3"],
        ["memory peak (GB/node)", f"{h_mem:.1f}", f"{d_mem:.1f}", "29.3 / 26.6"],
        ["cpu mean (%)", f"{h_cpu:.1f}", f"{d_cpu:.1f}", "DataMPI lower avg"],
    ]
    text = table(["metric", "Hadoop", "DataMPI", "paper"], rows)
    emit("fig11_resource_profiles", text)

    assert abs(h_read - 38.9) / 38.9 < 0.15
    assert abs(d_read - 65.8) / 65.8 < 0.15
    assert d_written < 0.65 * h_written
    assert d_net > h_net * 0.95  # DataMPI uses the network at least as hard
    assert d_mem < h_mem
    # early CPU: DataMPI above Hadoop (overlapped O-side pipeline)
    assert datampi.cpu_util.mean(0, 60) > hadoop.cpu_util.mean(0, 60)
