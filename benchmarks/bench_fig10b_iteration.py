"""Figure 10(b): PageRank and K-means, 40 GB, seven rounds.

Paper claims: DataMPI improves PageRank by 41% and K-means by 40% on
average across the seven iteration rounds.
"""

from repro.simulate.figures import GB, fig10b_iteration

from conftest import improvement, table


def test_fig10b_pagerank_kmeans_rounds(benchmark, emit):
    results = benchmark.pedantic(
        fig10b_iteration,
        kwargs=dict(data_bytes=40 * GB, rounds=7),
        rounds=1,
        iterations=1,
    )
    rows = []
    for workload, pair in results.items():
        hadoop, datampi = pair["Hadoop"], pair["DataMPI"]
        for i in range(7):
            rows.append(
                [workload, f"{i + 1}", f"{hadoop.round_times[i]:.0f}",
                 f"{datampi.round_times[i]:.0f}"]
            )
    text = table(["workload", "round", "Hadoop(s)", "DataMPI(s)"], rows)
    gains = {
        workload: improvement(
            pair["Hadoop"].mean_round, pair["DataMPI"].mean_round
        )
        for workload, pair in results.items()
    }
    text += "\n\naverage improvements: " + ", ".join(
        f"{k}: {v:.1f}%" for k, v in gains.items()
    )
    text += "\npaper: PageRank 41%, K-means 40%"
    emit("fig10b_iteration_rounds", text)

    assert 28 < gains["PageRank"] < 50
    assert 30 < gains["K-means"] < 55
    for pair in results.values():
        # DataMPI's later rounds run on resident state: faster than round 1
        times = pair["DataMPI"].round_times
        assert all(t < times[0] for t in times[1:])
