"""Figure 1(a): peak bandwidth of Hadoop Jetty / DataMPI / MVAPICH2.

Paper claims: DataMPI and MVAPICH2 drive more than twice Jetty's
bandwidth on IB/IPoIB and 10GigE; DataMPI sits slightly below MVAPICH2
(JVM binding overhead); Jetty is less efficient even on 1GigE.
"""

from repro.net.bandwidth import BandwidthBenchmark, summarize_figure_1a

from conftest import table


def test_fig01a_peak_bandwidth(benchmark, emit):
    bench = BandwidthBenchmark()
    result = benchmark.pedantic(bench.run, rounds=1, iterations=1)

    systems = ["Hadoop Jetty", "DataMPI", "MVAPICH2"]
    rows = [
        [fabric] + [f"{result[fabric][s]:.1f}" for s in systems]
        for fabric in result
    ]
    ratios = bench.improvement_matrix(result)
    text = table(["Network"] + [f"{s} (MB/s)" for s in systems], rows)
    text += "\n\nDataMPI / Jetty ratios: " + ", ".join(
        f"{k}: {v:.2f}x" for k, v in ratios.items()
    )
    text += "\npaper: >2x on IB and 10GigE; DataMPI slightly below MVAPICH2"
    emit("fig01a_peak_bandwidth", text)

    assert ratios["IB (16Gbps)"] > 2.0
    assert ratios["10GigE"] > 2.0
    assert 1.0 < ratios["1GigE"] < 1.5
    for fabric in result:
        assert result[fabric]["DataMPI"] < result[fabric]["MVAPICH2"]


def test_fig01a_summary_renders(benchmark):
    text = benchmark.pedantic(summarize_figure_1a, rounds=1, iterations=1)
    assert "Peak Bandwidth" in text
