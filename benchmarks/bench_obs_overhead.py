"""Flight-recorder overhead benchmark.

Measures what instrumentation costs on the shuffle hot path in both
tracer states and writes ``BENCH_OBS.json`` at the repo root:

* **null-call cost** — ns per disabled ``span``/``instant``/``counter``/
  ``complete`` call (the price every guarded call site pays when tracing
  is off);
* **shuffle A/B** — end-to-end shuffle records/s with the tracer
  disabled vs enabled, and the enabled run's event volume;
* **disabled overhead estimate** — (events the enabled run recorded ×
  measured ns per disabled call) / disabled elapsed time: an upper bound
  on what the *guards alone* cost the disabled hot path, independent of
  run-to-run throughput noise.  The acceptance bar is < 3%;
* **telemetry shipping cost** — mean cost of building + ingesting one
  telemetry snapshot, swept across shipping intervals: steady-state
  overhead ≈ snapshot cost / interval.  The bar is < 3% of one core at
  the default ``mpi.d.telemetry.interval.seconds`` (0.25s);
* **profiler sampling cost** — mean cost of one ``sample_once()`` tick
  with rank threads registered, plus a measured shuffle Hz sweep
  (off/10/50/100 Hz).  Steady-state overhead ≈ tick cost × rate, and
  that deterministic estimate at the default ``mpi.d.profile.hz`` (50)
  is gated < 3%; the measured sweep is recorded as informational
  because an end-to-end A/B is dominated by run-to-run noise.

Run standalone (preferred for stable numbers)::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py [--quick] [--out PATH]

or under pytest (quick mode, shape assertions only)::

    PYTHONPATH=src python -m pytest benchmarks/bench_obs_overhead.py -s
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import threading
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(REPO_ROOT, "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.core.buffers import SendPartitionList  # noqa: E402
from repro.core.partition import PartitionWindow  # noqa: E402
from repro.core.shuffle import PlaneConfig, ShuffleService  # noqa: E402
from repro.mpi import run_world  # noqa: E402
from repro.obs.profiler import DEFAULT_HZ, PROFILER  # noqa: E402
from repro.obs.tracer import TRACER, Tracer  # noqa: E402
from repro.serde.comparators import default_compare  # noqa: E402
from repro.serde.serialization import WritableSerializer  # noqa: E402

DEFAULT_OUT = os.path.join(REPO_ROOT, "BENCH_OBS.json")


# -- disabled null-call cost ----------------------------------------------------
def bench_null_calls(quick: bool) -> dict:
    """ns per call of each tracer entry point while disabled."""
    n = 200_000 if quick else 1_000_000
    t = Tracer()
    assert not t.enabled
    out: dict[str, float] = {}

    def measure(label, fn):
        t0 = time.perf_counter()
        for _ in range(n):
            fn()
        out[label] = round((time.perf_counter() - t0) / n * 1e9, 1)

    measure("span_ns", lambda: t.span("x"))
    measure("instant_ns", lambda: t.instant("x"))
    measure("counter_ns", lambda: t.counter("x", 1))
    measure("complete_ns", lambda: t.complete("x", 0.0, 0.0))
    # the guarded-site idiom: attribute load + bool check only
    measure("guard_ns", lambda: t.enabled and None)
    out["calls"] = n
    return out


# -- shuffle A/B ----------------------------------------------------------------
def _shuffle_config(num_partitions, num_processes, spill_dir):
    return PlaneConfig(
        num_partitions=num_partitions,
        window=PartitionWindow(num_partitions, num_processes),
        cmp=default_compare,
        serializer=WritableSerializer(),
        spill_dir=spill_dir,
        memory_budget=1 << 30,
        merge_threshold_blocks=64,
        pipelined=False,
    )


def _run_shuffle(records_per_rank: int, profile_hz: float = 0.0) -> tuple[float, int]:
    """One end-to-end shuffle pass; returns (elapsed, blocks_sent)."""
    nprocs = 2
    flush_bytes = 512  # small blocks: per-envelope overhead dominates
    num_partitions = 2 * nprocs

    def main(comm):
        if profile_hz > 0:
            PROFILER.register_thread(comm.rank, phase="compute")
        spill_dir = tempfile.mkdtemp(prefix="bench-obs-")
        service = ShuffleService(
            comm,
            lambda pid: _shuffle_config(num_partitions, comm.size, spill_dir),
        )
        plane = service.plane("fwd:0")
        spl = SendPartitionList(num_partitions, flush_bytes, cmp=default_compare)
        comm.barrier()
        t0 = time.perf_counter()
        for i in range(records_per_rank):
            block = spl.add(i % num_partitions, f"key-{i:08d}", i)
            if block is not None:
                service.send_block("fwd:0", block)
        for block in spl.flush_all():
            service.send_block("fwd:0", block)
        service.send_eos("fwd:0")
        plane.wait_complete(120)
        consumed = sum(
            1 for p in plane.rpls for _ in plane.merged_iter(p)
        )
        elapsed = time.perf_counter() - t0
        comm.barrier()
        stats = service.stats()
        service.shutdown()
        if profile_hz > 0:
            PROFILER.unregister_thread()
        return elapsed, stats["blocks_sent"], consumed

    if profile_hz > 0:
        PROFILER.acquire(profile_hz)
    try:
        results = run_world(nprocs, main)
    finally:
        if profile_hz > 0:
            PROFILER.release()
            for r in range(nprocs):
                PROFILER.collect(r)  # pop the bench profile, keep state clean
    consumed = sum(r[2] for r in results)
    assert consumed == records_per_rank * nprocs, consumed
    return max(r[0] for r in results), sum(r[1] for r in results)


def bench_shuffle_ab(quick: bool) -> dict:
    records_per_rank = 5000 if quick else 40000
    total = records_per_rank * 2

    # disabled first (the state the <3% bar protects)
    assert not TRACER.enabled
    elapsed_off, _ = _run_shuffle(records_per_rank)

    TRACER.enable(bench="obs-overhead")
    try:
        elapsed_on, blocks = _run_shuffle(records_per_rank)
        events = len(TRACER.drain())
    finally:
        TRACER.disable()
        TRACER.reset()

    return {
        "records": total,
        "blocks_sent": blocks,
        "disabled": {
            "elapsed_s": round(elapsed_off, 4),
            "records_per_s": round(total / elapsed_off),
        },
        "enabled": {
            "elapsed_s": round(elapsed_on, 4),
            "records_per_s": round(total / elapsed_on),
            "events_recorded": events,
        },
        "enabled_overhead_pct": round(
            (elapsed_on - elapsed_off) / elapsed_off * 100.0, 2
        ),
    }


# -- telemetry shipping cost ----------------------------------------------------
#: intervals (seconds) to sweep; the first is the configured default
TELEMETRY_SWEEP = (0.25, 0.1, 0.05)


def bench_telemetry(quick: bool) -> dict:
    """Cost of one telemetry snapshot (build + hub ingest) and the
    steady-state overhead that implies at each shipping interval.

    The shipper thread does exactly this work once per interval, so
    overhead ≈ snapshot cost / interval — a deterministic estimate,
    immune to the run-to-run noise an end-to-end A/B would add for an
    off-hot-path background thread.
    """
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.telemetry import TelemetryHub, build_snapshot

    n = 2_000 if quick else 20_000
    registry = MetricsRegistry()
    counter = registry.counter("bench.records")
    counter.inc(123_456)
    phases = {
        "compute": 1.25, "partition-sort": 0.4, "communicate": 0.8,
        "merge": 0.3, "checkpoint": 0.1, "control": 0.05,
    }
    shuffle_stats = {
        "blocks_sent": 640, "bytes_sent": 1 << 22, "envelopes_sent": 80,
        "records_received": 100_000, "blocks_received": 640,
        "spilled_bytes": 0, "duplicates_dropped": 0, "replays_dropped": 0,
    }
    queue_stats = {"pending": 3, "bytes_in": 4096}
    hub = TelemetryHub(ring=256)

    t0 = time.perf_counter()
    for seq in range(n):
        hub.ingest(build_snapshot(
            rank=0, epoch=0, seq=seq, phases=phases, shuffle=shuffle_stats,
            queue=queue_stats, tasks={"o": 4, "a": 2}, registry=registry,
        ))
    per_snapshot_s = (time.perf_counter() - t0) / n

    sweep = {
        str(interval): round(per_snapshot_s / interval * 100.0, 4)
        for interval in TELEMETRY_SWEEP
    }
    return {
        "snapshots": n,
        "snapshot_cost_us": round(per_snapshot_s * 1e6, 2),
        "overhead_pct_by_interval": sweep,
        "default_interval_s": TELEMETRY_SWEEP[0],
        "default_overhead_pct": sweep[str(TELEMETRY_SWEEP[0])],
    }


# -- profiler sampling cost -----------------------------------------------------
#: sampling rates (Hz) to sweep on the shuffle hot path; 0 = profiler off
PROFILER_SWEEP = (0, 10, 50, 100)


def bench_profiler(quick: bool) -> dict:
    """Cost of one profiler tick and the overhead that implies per rate.

    The sampler thread does exactly ``sample_once()`` work per tick, so
    steady-state overhead ≈ tick cost × Hz — deterministic, like the
    telemetry estimate.  A measured shuffle sweep across rates is
    recorded alongside it, but only as an informational cross-check:
    end-to-end A/B deltas on a sub-second shuffle are dominated by
    scheduler noise (the committed tracer A/B is itself negative).
    """
    n = 2_000 if quick else 20_000
    nranks = 4

    # register a few fake rank threads so each tick walks realistic state
    idents = [threading.get_ident() + 1 + i for i in range(nranks - 1)]
    PROFILER.register_thread(0, phase="compute")
    for rank, ident in enumerate(idents, start=1):
        PROFILER.register_thread(rank, phase="merge", ident=ident)
    try:
        t0 = time.perf_counter()
        for _ in range(n):
            PROFILER.sample_once()
        per_tick_s = (time.perf_counter() - t0) / n
    finally:
        PROFILER.unregister_thread()
        for ident in idents:
            PROFILER.unregister_thread(ident=ident)
        for rank in range(nranks):
            PROFILER.collect(rank)  # discard the bench profile

    overhead = {
        str(hz): round(per_tick_s * hz * 100.0, 4)
        for hz in PROFILER_SWEEP if hz > 0
    }

    records_per_rank = 5000 if quick else 40000
    total = records_per_rank * 2
    measured = {}
    for hz in PROFILER_SWEEP:
        elapsed, _ = _run_shuffle(records_per_rank, profile_hz=float(hz))
        measured[str(hz)] = {
            "elapsed_s": round(elapsed, 4),
            "records_per_s": round(total / elapsed),
        }
    base = measured["0"]["elapsed_s"]
    for hz in PROFILER_SWEEP:
        if hz:
            measured[str(hz)]["overhead_pct_vs_off"] = round(
                (measured[str(hz)]["elapsed_s"] - base) / base * 100.0, 2
            )

    return {
        "ticks": n,
        "registered_threads": nranks,
        "tick_cost_us": round(per_tick_s * 1e6, 2),
        "overhead_pct_by_hz": overhead,
        "default_hz": DEFAULT_HZ,
        "default_overhead_pct": overhead[str(int(DEFAULT_HZ))],
        "measured_shuffle_by_hz": measured,
    }


def run_all(quick: bool) -> dict:
    null_calls = bench_null_calls(quick)
    shuffle = bench_shuffle_ab(quick)
    telemetry = bench_telemetry(quick)
    profiler = bench_profiler(quick)
    # guards-only cost of the disabled hot path: every event the enabled
    # run recorded corresponds to a call site the disabled run also hit
    worst_call_ns = max(
        null_calls[k] for k in
        ("span_ns", "instant_ns", "counter_ns", "complete_ns")
    )
    guarded_cost_s = shuffle["enabled"]["events_recorded"] * worst_call_ns / 1e9
    disabled_pct = guarded_cost_s / shuffle["disabled"]["elapsed_s"] * 100.0
    return {
        "meta": {
            "quick": quick,
            "python": platform.python_version(),
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        },
        "null_calls": null_calls,
        "shuffle": shuffle,
        "telemetry": telemetry,
        "profiler": profiler,
        "disabled_overhead_pct_estimate": round(disabled_pct, 3),
        "acceptance": {
            "bar_pct": 3.0,
            "passed": (
                disabled_pct < 3.0
                and telemetry["default_overhead_pct"] < 3.0
                and profiler["default_overhead_pct"] < 3.0
            ),
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI smoke sizes")
    parser.add_argument("--out", default=DEFAULT_OUT, help="JSON output path")
    args = parser.parse_args(argv)
    report = run_all(args.quick)
    with open(args.out, "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")
    print(json.dumps(report, indent=2))
    print(f"\nwrote {args.out}")
    return 0 if report["acceptance"]["passed"] else 1


# -- pytest entry (quick mode, shape assertions only) ---------------------------
def test_bench_obs_overhead_quick(emit):
    report = run_all(quick=True)
    emit("obs-overhead", json.dumps(report, indent=2))
    assert report["null_calls"]["span_ns"] < 2000  # sanity, not a perf bar
    assert report["shuffle"]["enabled"]["events_recorded"] > 0
    assert report["disabled_overhead_pct_estimate"] < 3.0
    assert report["telemetry"]["default_overhead_pct"] < 3.0
    assert report["profiler"]["default_overhead_pct"] < 3.0
    assert set(report["profiler"]["measured_shuffle_by_hz"]) == {
        str(hz) for hz in PROFILER_SWEEP
    }
    assert report["acceptance"]["passed"]


if __name__ == "__main__":
    sys.exit(main())
