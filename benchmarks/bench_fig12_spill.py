"""Figure 12: spill-over efficiency.

Paper claims: caching less intermediate data in memory degrades DataMPI
only slightly (up to ~9% from full to zero caching), and zero-caching
DataMPI still beats Hadoop — because A tasks are data-local and spilled
data is prefetched at the start of the A phase.
"""

from repro.simulate.cluster import TESTBED_A, SimCluster
from repro.simulate.figures import GB, fig12_spill_sweep
from repro.simulate.hadoop_model import HadoopSimParams, simulate_hadoop_job
from repro.simulate.profiles import TERASORT

from conftest import table

DATA = 168 * GB


def test_fig12_spill_over_efficiency(benchmark, emit):
    sweep = benchmark.pedantic(
        fig12_spill_sweep,
        kwargs=dict(data_bytes=DATA, fractions=(0.0, 0.2, 0.4, 0.6, 0.8, 1.0)),
        rounds=1,
        iterations=1,
    )
    hadoop = simulate_hadoop_job(
        SimCluster(TESTBED_A),
        HadoopSimParams(
            TERASORT, DATA, TESTBED_A.default_block_size,
            TESTBED_A.num_slaves * TESTBED_A.reduce_slots, name="hadoop-ref",
        ),
        profile_resources=False,
    )
    rows = [
        [f"{fraction:.0%}", f"{duration:.0f}",
         f"{(duration - sweep[1.0]) / sweep[1.0] * 100:+.1f}%"]
        for fraction, duration in sorted(sweep.items())
    ]
    text = table(["in-memory data", "time(s)", "vs full caching"], rows)
    text += f"\n\nHadoop reference: {hadoop.duration:.0f}s"
    text += "\npaper: <=9% degradation; zero caching still beats Hadoop"
    emit("fig12_spill_over", text)

    durations = [sweep[f] for f in sorted(sweep)]
    assert durations == sorted(durations, reverse=True)  # more cache, less time
    degradation = (sweep[0.0] - sweep[1.0]) / sweep[1.0] * 100
    assert 0 < degradation < 40
    assert sweep[0.0] < hadoop.duration
